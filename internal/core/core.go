// Package core is the public face of the simulator: it assembles the ISA,
// memory hierarchy, out-of-order pipeline, STT and SDO pieces into a
// Machine, names the paper's evaluated design variants (Table II), and
// returns uniform Results that the experiment harness, the examples and
// the benchmarks all consume.
package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/coherence"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/obs"
	"repro/internal/pipeline"
)

// Variant identifies one registered protection scheme. The first eight
// ids are the paper's Table II rows (the const block below); further
// schemes join via RegisterScheme (registry.go) without widening the
// default Table II sweep.
type Variant int

const (
	// Unsafe is the unmodified insecure processor.
	Unsafe Variant = iota
	// STTLd is STT delaying the execution of unsafe loads only.
	STTLd
	// STTLdFp is STT delaying unsafe loads and fmul/fdiv/fsqrt micro-ops.
	STTLdFp
	// StaticL1 is STT+SDO with the predictor always predicting the L1.
	StaticL1
	// StaticL2 always predicts the L2.
	StaticL2
	// StaticL3 always predicts the L3.
	StaticL3
	// Hybrid uses the paper's hybrid location predictor (§V-D).
	Hybrid
	// Perfect uses an oracle that always predicts the correct level.
	Perfect

	numVariants
)

// Variants returns the Table II rows in order — exactly the grid the
// published golden results sweep. Registered additions (SafeSpec,
// SpecBox, ...) are excluded deliberately; sweep Registered() for the
// full defense zoo.
func Variants() []Variant {
	out := make([]Variant, 0, numVariants)
	for i, s := range registry {
		if s.TableII {
			out = append(out, Variant(i))
		}
	}
	return out
}

// SDOVariants returns only the STT+SDO rows.
func SDOVariants() []Variant {
	return []Variant{StaticL1, StaticL2, StaticL3, Hybrid, Perfect}
}

// String returns the registered scheme name (Table II spelling for the
// paper's rows).
func (v Variant) String() string {
	if s := schemeOf(v); s != nil {
		return s.Name
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Description returns the scheme's one-line description (the Table II
// description column for the paper's rows).
func (v Variant) Description() string {
	if s := schemeOf(v); s != nil {
		return s.Description
	}
	return ""
}

// IsSDO reports whether the variant runs Obl-Lds.
func (v Variant) IsSDO() bool {
	s := schemeOf(v)
	return s != nil && s.SDO
}

// ParseVariant maps a name (registered spelling or a short alias) to a
// Variant. Unknown names report the full list of valid scheme names —
// the text surfaces verbatim in the simsvc HTTP 400 body.
func ParseVariant(s string) (Variant, error) {
	for i, info := range registry {
		if info.Name == s {
			return Variant(i), nil
		}
		for _, a := range info.Aliases {
			if a == s {
				return Variant(i), nil
			}
		}
	}
	return 0, fmt.Errorf("core: unknown variant %q (valid schemes: %s)", s, validNames())
}

// WarmupMode selects how Config.WarmupInstrs are executed.
type WarmupMode int

const (
	// WarmupDetailed runs warmup on the detailed pipeline (the default,
	// and the legacy behaviour the golden exports were produced with):
	// warm microarchitectural state reflects the variant's own
	// speculative execution, and warmup can overshoot WarmupInstrs by up
	// to the commit width.
	WarmupDetailed WarmupMode = iota
	// WarmupFunctional runs warmup on the functional emulator
	// (internal/arch), touch-warming caches, TLB and branch predictor
	// non-speculatively — the paper artifact's SimPoint-style functional
	// fast-forward. The handoff is exact (warmup executes exactly
	// WarmupInstrs instructions unless the program halts first), the
	// measurement window starts at cycle 0, and the warm state is
	// independent of variant/model/ablation — which is what makes one
	// warmup Checkpoint reusable across a whole sweep grid.
	WarmupFunctional
)

// String names the mode as ParseWarmupMode accepts it.
func (m WarmupMode) String() string {
	switch m {
	case WarmupDetailed:
		return "detailed"
	case WarmupFunctional:
		return "functional"
	}
	return fmt.Sprintf("WarmupMode(%d)", int(m))
}

// ParseWarmupMode maps a flag/request string to a WarmupMode. The empty
// string means the default (detailed).
func ParseWarmupMode(s string) (WarmupMode, error) {
	switch s {
	case "", "detailed":
		return WarmupDetailed, nil
	case "functional":
		return WarmupFunctional, nil
	}
	return 0, fmt.Errorf("core: unknown warmup mode %q (want detailed or functional)", s)
}

// Ablation toggles individual SDO/STT mechanisms for design-space studies
// (all false reproduces the paper's STT+SDO).
type Ablation struct {
	// DisableEarlyForward turns off §V-C2's early wait-buffer forwarding.
	DisableEarlyForward bool
	// AlwaysValidate disables InvisiSpec exposures.
	AlwaysValidate bool
	// NoImplicitChannelProtection measures the cost of STT's
	// implicit-channel rules by skipping them (INSECURE).
	NoImplicitChannelProtection bool
	// OblDRAMVariant architects the DO DRAM variant §VI-B2 rejects.
	OblDRAMVariant bool
}

// Config selects a design variant, attack model and run bounds.
type Config struct {
	Variant Variant
	Model   pipeline.AttackModel
	// Ablate optionally disables individual mechanisms (see Ablation).
	Ablate Ablation
	// WarmupInstrs runs this many committed instructions before the
	// measurement window, warming caches, TLB and predictors — the
	// SimPoint-style methodology of §VIII-A. Warmup activity is excluded
	// from the returned Result.
	WarmupInstrs uint64
	// WarmupMode selects detailed (default) or functional warmup.
	WarmupMode WarmupMode
	// MaxInstrs bounds committed instructions in the measurement window
	// (0: run to halt).
	MaxInstrs uint64
	// MaxCycles bounds simulated cycles (0: run to halt).
	MaxCycles uint64
	// IntervalCycles, when non-zero, samples an interval statistics point
	// every IntervalCycles cycles of the measurement window (warmup is
	// excluded) into Result.Intervals.
	IntervalCycles uint64
	// Check, when non-nil, is polled by the pipeline every few thousand
	// cycles with the current cycle/committed counts; a non-nil return
	// aborts the run with that error (cancellation, deadlines, stall
	// watchdogs). Nil costs the pipeline one pointer compare per cycle.
	Check func(cycle, committed uint64) error
	// Mem overrides the Table I memory parameters when non-nil.
	Mem *mem.Config
	// Pipe overrides the Table I core parameters when non-nil (its
	// Protection/Model/LocPred fields are overwritten from Variant/Model).
	Pipe *pipeline.Config
}

// Machine is a single-core simulated system ready to Run.
type Machine struct {
	cfg    Config
	pcfg   pipeline.Config
	core   *pipeline.Core
	hier   *mem.Hierarchy
	data   *isa.Memory
	prog   *isa.Program
	warmed bool // functional warmup already applied (in place or restored)
}

// pipelineConfig translates a Variant into pipeline settings.
func pipelineConfig(cfg Config, probe func(uint64) mem.Level) pipeline.Config {
	pc := pipeline.DefaultConfig()
	if cfg.Pipe != nil {
		pc = *cfg.Pipe
	}
	pc.Model = cfg.Model
	pc.DisableEarlyForward = cfg.Ablate.DisableEarlyForward
	pc.AlwaysValidate = cfg.Ablate.AlwaysValidate
	pc.NoImplicitChannelProtection = cfg.Ablate.NoImplicitChannelProtection
	pc.OblDRAMVariant = cfg.Ablate.OblDRAMVariant
	pc.MaxInstrs = cfg.MaxInstrs
	if cfg.MaxInstrs > 0 && cfg.WarmupMode == WarmupDetailed {
		// The budget is the measurement window; detailed warmup commits
		// on the same pipeline, so it is added here. Functional warmup
		// happens outside the pipeline and leaves the budget alone.
		pc.MaxInstrs += cfg.WarmupInstrs
	}
	pc.MaxCycles = cfg.MaxCycles
	pc.Check = cfg.Check
	s := schemeOf(cfg.Variant)
	if s == nil {
		panic(fmt.Sprintf("core: unregistered variant %d", int(cfg.Variant)))
	}
	s.Configure(&pc, probe)
	return pc
}

// NewMachine builds a single-core machine for prog. init (optional)
// populates the initial memory image.
func NewMachine(cfg Config, prog *isa.Program, init func(*isa.Memory)) *Machine {
	data := isa.NewMemory()
	if init != nil {
		init(data)
	}
	mc := mem.DefaultConfig()
	if cfg.Mem != nil {
		mc = *cfg.Mem
	}
	hier := mem.NewHierarchy(mc)
	pc := pipelineConfig(cfg, hier.Probe)
	return &Machine{
		cfg:  cfg,
		pcfg: pc,
		core: pipeline.New(pc, prog, data, hier),
		hier: hier,
		data: data,
		prog: prog,
	}
}

// CaptureCheckpoint runs functional warmup for prog/init under cfg's
// memory and pipeline geometry and snapshots the result. Only
// WarmupInstrs, Mem and Pipe are consulted: the checkpoint is independent
// of Variant, Model and Ablate by construction, which is what makes it
// reusable across every cell of a sweep grid.
func CaptureCheckpoint(cfg Config, prog *isa.Program, init func(*isa.Memory)) *arch.Checkpoint {
	mc := mem.DefaultConfig()
	if cfg.Mem != nil {
		mc = *cfg.Mem
	}
	pc := pipeline.DefaultConfig()
	if cfg.Pipe != nil {
		pc = *cfg.Pipe
	}
	return arch.Capture(prog, init, mc, pc.BP, pc.CodeBase, cfg.WarmupInstrs)
}

// CaptureCheckpoints is the multi-boundary form of CaptureCheckpoint:
// one continuous functional warmup pass snapshotting at each of the
// given non-decreasing committed-instruction boundaries. It is the
// capture primitive for SimPoint-style sampled runs, where every
// representative interval needs a checkpoint at its start with warm
// state carried across the skipped intervals in between. As with
// CaptureCheckpoint, only Mem and Pipe are consulted, so the series is
// shared across every variant/model cell of a sweep.
func CaptureCheckpoints(cfg Config, prog *isa.Program, init func(*isa.Memory), boundaries []uint64) []*arch.Checkpoint {
	mc := mem.DefaultConfig()
	if cfg.Mem != nil {
		mc = *cfg.Mem
	}
	pc := pipeline.DefaultConfig()
	if cfg.Pipe != nil {
		pc = *cfg.Pipe
	}
	return arch.CaptureSeries(prog, init, mc, pc.BP, pc.CodeBase, boundaries)
}

// Restore loads a functional-warmup checkpoint into the machine before
// Run: the architectural memory image and registers, the warmed memory
// hierarchy and branch predictor state, and the fetch PC. The machine
// must be configured with WarmupFunctional and the WarmupInstrs the
// checkpoint was captured with; Run then goes straight to the
// measurement window. Restoring is bit-for-bit equivalent to performing
// the functional warmup in place (asserted by TestRestoreEquivalence).
func (m *Machine) Restore(ck *arch.Checkpoint) error {
	if m.cfg.WarmupMode != WarmupFunctional {
		return fmt.Errorf("core: Restore requires WarmupMode == WarmupFunctional")
	}
	if ck.WarmupInstrs != m.cfg.WarmupInstrs {
		return fmt.Errorf("core: checkpoint captured with warmup %d, machine configured with %d",
			ck.WarmupInstrs, m.cfg.WarmupInstrs)
	}
	m.data.SetImage(ck.Mem)
	if err := m.hier.SetState(ck.Hier); err != nil {
		return err
	}
	if err := m.core.Predictor().SetState(ck.BP); err != nil {
		return err
	}
	m.core.RestoreArch(ck.Arch.Regs, ck.Arch.PC, ck.Arch.Halted)
	m.warmed = true
	return nil
}

// Memory returns the machine's architectural memory.
func (m *Machine) Memory() *isa.Memory { return m.data }

// Hierarchy returns the machine's memory hierarchy.
func (m *Machine) Hierarchy() *mem.Hierarchy { return m.hier }

// Regs returns the committed registers.
func (m *Machine) Regs() [isa.NumRegs]uint64 { return m.core.Regs() }

// Core exposes the underlying pipeline (stats, stepping, tracing).
func (m *Machine) Core() *pipeline.Core { return m.core }

// SetObserver attaches one event recorder to both the pipeline and the
// memory hierarchy, so a single set of sinks sees the whole machine.
// Pass nil to detach.
func (m *Machine) SetObserver(r *obs.Recorder) {
	m.core.SetObserver(r)
	m.hier.SetObserver(r)
}

// Result is one run's outcome.
type Result struct {
	Variant Variant
	Model   pipeline.AttackModel
	pipeline.Stats

	// Memory-system statistics.
	L1DHits, L1DMisses uint64
	L2Hits, L2Misses   uint64
	TLBMisses          uint64
	DRAMRowHits        uint64
	DRAMRowMisses      uint64

	// Interval time series (nil unless Config.IntervalCycles > 0).
	IntervalCycles uint64          `json:",omitempty"`
	Intervals      []IntervalPoint `json:",omitempty"`
	// Measurement-window ROB / load-queue occupancy histograms
	// (pipeline.OccupancyBuckets equal-width buckets over each
	// structure's capacity; nil unless interval sampling ran).
	ROBOccHist []uint64 `json:",omitempty"`
	LQOccHist  []uint64 `json:",omitempty"`
	// SampledWindows holds the per-representative interval series of a
	// sampled-mode reconstruction (harness.ReconstructResult): one entry
	// per detailed-simulated representative window, each carrying the
	// cluster weight a consumer needs to recombine the series into a
	// whole-window estimate. Nil for detailed whole-window runs, whose
	// series lives in Intervals.
	SampledWindows []SampledWindow `json:",omitempty"`
}

// SampledWindow is the interval time series of one representative window
// of a sampled-mode run: the window's position in the measurement window,
// its cluster weight, and the per-interval points detailed simulation
// produced inside it. Windows do not tile the measurement window — the
// gaps between them were skipped by design — so time-series consumers
// must weight, not concatenate.
type SampledWindow struct {
	// Start and Len bound the window in committed instructions from the
	// start of the measurement window.
	Start uint64 `json:"start"`
	Len   uint64 `json:"len"`
	// Weight is the window's cluster weight (fractions sum to ~1 across
	// windows); an interval metric's whole-window estimate is the
	// weight-averaged combination across windows.
	Weight    float64         `json:"weight"`
	Intervals []IntervalPoint `json:"intervals"`
}

// Run simulates to halt (or the configured bounds) and gathers results.
// With WarmupInstrs set, statistics cover only the post-warmup window.
func (m *Machine) Run() (Result, error) {
	var base pipeline.Stats
	var err error
	if m.cfg.WarmupInstrs > 0 && !m.warmed {
		switch m.cfg.WarmupMode {
		case WarmupFunctional:
			// Warm in place with the functional emulator. This is the
			// same code path Restore replays from a checkpoint, so a
			// restored machine and a self-warmed one are bit-identical.
			st := arch.Warmup(m.prog, m.data, m.hier, m.core.Predictor(), m.pcfg.CodeBase, m.cfg.WarmupInstrs)
			m.core.RestoreArch(st.Regs, st.PC, st.Halted)
			m.warmed = true
		default:
			for !m.core.Halted() && m.core.Stats().Committed < m.cfg.WarmupInstrs {
				if err = m.core.Step(); err != nil {
					return Result{Variant: m.cfg.Variant, Model: m.cfg.Model}, err
				}
			}
			base = m.core.Stats()
		}
	}
	var ic *intervalCollector
	if m.cfg.IntervalCycles > 0 {
		// Enabled after warmup so the series covers exactly the
		// measurement window.
		ic = newIntervalCollector(m.hier)
		m.core.EnableIntervalSampling(m.cfg.IntervalCycles, ic.collect)
	}
	st, err := m.core.Run()
	r := Result{
		Variant: m.cfg.Variant,
		Model:   m.cfg.Model,
		Stats:   st.Sub(base),
	}
	if ic != nil {
		m.core.FlushInterval() // trailing partial interval
		r.IntervalCycles = m.cfg.IntervalCycles
		r.Intervals = ic.points
		rob, lq := m.core.OccupancyHistograms()
		r.ROBOccHist = append([]uint64(nil), rob[:]...)
		r.LQOccHist = append([]uint64(nil), lq[:]...)
	}
	r.L1DHits, r.L1DMisses = m.hier.L1D().Hits, m.hier.L1D().Misses
	r.L2Hits, r.L2Misses = m.hier.L2().Hits, m.hier.L2().Misses
	r.TLBMisses = m.hier.TLB().Misses
	d := m.hier.Shared().DRAMStats()
	r.DRAMRowHits, r.DRAMRowMisses = d.RowHits, d.RowMisses
	return r, err
}

// Multicore runs several cores in cycle lockstep over one coherent memory
// system and one shared architectural memory — enough to exercise the
// MESI-driven consistency machinery (§V-C1) with real cross-core traffic.
type Multicore struct {
	sys   *coherence.System
	cores []*pipeline.Core
	data  *isa.Memory
}

// NewMulticore builds one core per program, all sharing memory. init runs
// once on the shared image.
func NewMulticore(cfg Config, progs []*isa.Program, init func(*isa.Memory)) *Multicore {
	data := isa.NewMemory()
	if init != nil {
		init(data)
	}
	mcfg := mem.DefaultConfig()
	if cfg.Mem != nil {
		mcfg = *cfg.Mem
	}
	mcfg.L3Slices = len(progs)
	sys := coherence.NewSystem(mcfg, len(progs))
	mc := &Multicore{sys: sys, data: data}
	for i, p := range progs {
		port := sys.Core(i)
		pc := pipelineConfig(cfg, port.Probe)
		c := pipeline.New(pc, p, data, port)
		c.SetInvalidateHook(port.Hierarchy())
		mc.cores = append(mc.cores, c)
	}
	return mc
}

// Core returns core i's pipeline (for stats and registers).
func (m *Multicore) Core(i int) *pipeline.Core { return m.cores[i] }

// Memory returns the shared architectural memory.
func (m *Multicore) Memory() *isa.Memory { return m.data }

// System returns the coherence fabric.
func (m *Multicore) System() *coherence.System { return m.sys }

// Run steps every core in lockstep until all halt (or maxCycles elapses).
func (m *Multicore) Run(maxCycles uint64) error {
	for cycle := uint64(0); ; cycle++ {
		if maxCycles > 0 && cycle >= maxCycles {
			return fmt.Errorf("core: multicore run exceeded %d cycles", maxCycles)
		}
		running := false
		for _, c := range m.cores {
			if !c.Halted() {
				running = true
				if err := c.Step(); err != nil {
					return err
				}
			}
		}
		if !running {
			return nil
		}
	}
}
