package core

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/pipeline"
)

func testProgram() (*isa.Program, func(*isa.Memory)) {
	b := isa.NewBuilder().
		MovI(isa.R1, 0x1000).
		MovI(isa.R2, 0).
		MovI(isa.R3, 50).
		MovI(isa.R4, 0).
		Label("loop").
		Load(isa.R5, isa.R1, 0).
		Load(isa.R6, isa.R5, 0).
		Add(isa.R4, isa.R4, isa.R6).
		AddI(isa.R1, isa.R1, 8).
		AddI(isa.R2, isa.R2, 1).
		Blt(isa.R2, isa.R3, "loop").
		Halt()
	prog := b.MustBuild()
	init := func(m *isa.Memory) {
		for i := 0; i < 50; i++ {
			m.Write64(uint64(0x1000+i*8), uint64(0x2000+(i%5)*64))
		}
		for i := 0; i < 5; i++ {
			m.Write64(uint64(0x2000+i*64), uint64(i*10))
		}
	}
	return prog, init
}

func TestAllVariantsRunAndAgree(t *testing.T) {
	prog, init := testProgram()
	var wantR4 uint64
	for i, v := range Variants() {
		for _, model := range []pipeline.AttackModel{pipeline.Spectre, pipeline.Futuristic} {
			m := NewMachine(Config{Variant: v, Model: model}, prog, init)
			res, err := m.Run()
			if err != nil {
				t.Fatalf("%v/%v: %v", v, model, err)
			}
			if !res.Halted {
				t.Fatalf("%v/%v: did not halt", v, model)
			}
			r4 := m.Regs()[isa.R4]
			if i == 0 && model == pipeline.Spectre {
				wantR4 = r4
			} else if r4 != wantR4 {
				t.Fatalf("%v/%v: R4 = %d, want %d", v, model, r4, wantR4)
			}
			if res.Variant != v || res.Model != model {
				t.Fatalf("result labels wrong: %+v", res)
			}
			if res.Committed == 0 || res.Cycles == 0 {
				t.Fatalf("%v/%v: empty stats", v, model)
			}
		}
	}
}

func TestVariantNamesAndParse(t *testing.T) {
	for _, v := range Variants() {
		if v.String() == "" || v.Description() == "" {
			t.Errorf("variant %d lacks name/description", v)
		}
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if v, err := ParseVariant("hybrid"); err != nil || v != Hybrid {
		t.Error("alias parse failed")
	}
	if _, err := ParseVariant("bogus"); err == nil {
		t.Error("bogus variant should fail")
	}
	if len(Variants()) != 8 {
		t.Errorf("Table II has 8 rows, got %d", len(Variants()))
	}
	if len(SDOVariants()) != 5 {
		t.Error("five SDO rows expected")
	}
	for _, v := range SDOVariants() {
		if !v.IsSDO() {
			t.Errorf("%v should be SDO", v)
		}
	}
	if Unsafe.IsSDO() || STTLd.IsSDO() || STTLdFp.IsSDO() {
		t.Error("non-SDO variants misclassified")
	}
}

func TestMaxInstrsBound(t *testing.T) {
	prog, init := testProgram()
	m := NewMachine(Config{Variant: Unsafe, MaxInstrs: 100}, prog, init)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatal("should have stopped on the instruction budget")
	}
	if res.Committed < 100 || res.Committed > 110 {
		t.Fatalf("committed = %d, want ~100", res.Committed)
	}
}

func TestResultMemStats(t *testing.T) {
	prog, init := testProgram()
	m := NewMachine(Config{Variant: Unsafe}, prog, init)
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.L1DHits == 0 {
		t.Error("expected L1D hits")
	}
	if res.L1DMisses == 0 {
		t.Error("expected L1D misses (cold)")
	}
}

func TestMulticoreSharedCounter(t *testing.T) {
	// Two cores increment disjoint counters then one reads the other's —
	// exercising cross-core coherence end to end.
	progA := isa.NewBuilder().
		MovI(isa.R1, 0x8000).
		MovI(isa.R2, 0).
		MovI(isa.R3, 100).
		Label("loop").
		Load(isa.R4, isa.R1, 0).
		AddI(isa.R4, isa.R4, 1).
		Store(isa.R4, isa.R1, 0).
		AddI(isa.R2, isa.R2, 1).
		Blt(isa.R2, isa.R3, "loop").
		Halt().
		MustBuild()
	progB := isa.NewBuilder().
		MovI(isa.R1, 0x8040). // different line
		MovI(isa.R2, 0).
		MovI(isa.R3, 100).
		Label("loop").
		Load(isa.R4, isa.R1, 0).
		AddI(isa.R4, isa.R4, 1).
		Store(isa.R4, isa.R1, 0).
		AddI(isa.R2, isa.R2, 1).
		Blt(isa.R2, isa.R3, "loop").
		Halt().
		MustBuild()
	mc := NewMulticore(Config{Variant: StaticL2}, []*isa.Program{progA, progB}, nil)
	if err := mc.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	if got := mc.Memory().Read64(0x8000); got != 100 {
		t.Fatalf("core A counter = %d, want 100", got)
	}
	if got := mc.Memory().Read64(0x8040); got != 100 {
		t.Fatalf("core B counter = %d, want 100", got)
	}
	if err := mc.System().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMulticoreSameLineContention(t *testing.T) {
	// Both cores hammer the SAME line (disjoint words): MESI ping-pong plus
	// consistency squashes; results must still be exact.
	mk := func(addr int64) *isa.Program {
		return isa.NewBuilder().
			MovI(isa.R1, addr).
			MovI(isa.R2, 0).
			MovI(isa.R3, 60).
			Label("loop").
			Load(isa.R4, isa.R1, 0).
			AddI(isa.R4, isa.R4, 1).
			Store(isa.R4, isa.R1, 0).
			AddI(isa.R2, isa.R2, 1).
			Blt(isa.R2, isa.R3, "loop").
			Halt().
			MustBuild()
	}
	for _, v := range []Variant{Unsafe, STTLd, StaticL2} {
		mc := NewMulticore(Config{Variant: v, Model: pipeline.Futuristic},
			[]*isa.Program{mk(0x9000), mk(0x9008)}, nil)
		if err := mc.Run(5_000_000); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if got := mc.Memory().Read64(0x9000); got != 60 {
			t.Fatalf("%v: word0 = %d, want 60", v, got)
		}
		if got := mc.Memory().Read64(0x9008); got != 60 {
			t.Fatalf("%v: word1 = %d, want 60", v, got)
		}
		if err := mc.System().CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}
