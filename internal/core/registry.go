package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/mem"
	"repro/internal/pipeline"
	"repro/internal/sdo"
)

// SchemeInfo describes one registered protection scheme: the metadata
// CLI parsing, the /variants endpoint and the docs surface, plus the
// Configure hook that translates the scheme into pipeline settings.
type SchemeInfo struct {
	// Name is the display name (Table II spelling for the paper's rows).
	Name string `json:"name"`
	// Aliases are the exact alternative spellings ParseVariant accepts.
	Aliases []string `json:"aliases,omitempty"`
	// Description is the one-line Table II description column.
	Description string `json:"description"`
	// SDO marks schemes that run Obl-Lds (Variant.IsSDO).
	SDO bool `json:"sdo,omitempty"`
	// TableII marks the paper's eight evaluated rows: Variants() returns
	// exactly these, keeping the published golden sweeps reproducible.
	TableII bool `json:"table2,omitempty"`
	// Configure applies the scheme to a pipeline Config. probe is the
	// hierarchy's presence oracle (the Perfect predictor needs it).
	Configure func(pc *pipeline.Config, probe func(uint64) mem.Level) `json:"-"`
}

// registry holds every known scheme, indexed by Variant. The first
// numVariants entries are the Table II rows in const order; schemes
// registered later (SafeSpec, SpecBox, ...) append after them.
// Package-level initialization order guarantees builtinSchemes runs
// before any RegisterScheme in a dependent var declaration.
var registry = builtinSchemes()

func builtinSchemes() []SchemeInfo {
	stt := func(fp bool) func(pc *pipeline.Config, _ func(uint64) mem.Level) {
		return func(pc *pipeline.Config, _ func(uint64) mem.Level) {
			pc.Protection = pipeline.ProtSTT
			pc.Scheme = pipeline.SchemeSTT
			pc.FPTransmitters = fp
		}
	}
	// All SDO configurations treat loads and FP micro-ops as
	// transmitters with architected DO operations (§VIII-A).
	sdoCfg := func(pred func(probe func(uint64) mem.Level) sdo.LocationPredictor) func(pc *pipeline.Config, probe func(uint64) mem.Level) {
		return func(pc *pipeline.Config, probe func(uint64) mem.Level) {
			pc.Protection = pipeline.ProtSDO
			pc.Scheme = pipeline.SchemeSDO
			pc.FPTransmitters = true
			pc.LocPred = pred(probe)
		}
	}
	static := func(l mem.Level) func(func(uint64) mem.Level) sdo.LocationPredictor {
		return func(func(uint64) mem.Level) sdo.LocationPredictor { return sdo.Static{Level: l} }
	}
	return []SchemeInfo{
		Unsafe: {
			Name: "Unsafe", Aliases: []string{"unsafe"}, TableII: true,
			Description: "An unmodified insecure processor",
			Configure: func(pc *pipeline.Config, _ func(uint64) mem.Level) {
				pc.Protection = pipeline.ProtNone
				pc.Scheme = pipeline.SchemeUnsafe
				pc.FPTransmitters = false
			},
		},
		STTLd: {
			Name: "STT{ld}", Aliases: []string{"stt", "stt{ld}", "sttld"}, TableII: true,
			Description: "STT, delaying the execution of unsafe loads only",
			Configure:   stt(false),
		},
		STTLdFp: {
			Name: "STT{ld+fp}", Aliases: []string{"stt{ld+fp}", "sttldfp", "stt+fp"}, TableII: true,
			Description: "STT, delaying the execution of unsafe loads and fmult/div/fsqrt micro-ops",
			Configure:   stt(true),
		},
		StaticL1: {
			Name: "Static L1", Aliases: []string{"static-l1", "static l1", "l1"}, SDO: true, TableII: true,
			Description: "SDO with predictor always predicting L1 D-Cache",
			Configure:   sdoCfg(static(mem.L1)),
		},
		StaticL2: {
			Name: "Static L2", Aliases: []string{"static-l2", "static l2", "l2"}, SDO: true, TableII: true,
			Description: "SDO with predictor always predicting L2",
			Configure:   sdoCfg(static(mem.L2)),
		},
		StaticL3: {
			Name: "Static L3", Aliases: []string{"static-l3", "static l3", "l3"}, SDO: true, TableII: true,
			Description: "SDO with predictor always predicting L3",
			Configure:   sdoCfg(static(mem.L3)),
		},
		Hybrid: {
			Name: "Hybrid", Aliases: []string{"hybrid"}, SDO: true, TableII: true,
			Description: "SDO with proposed hybrid location predictor (Section V-D)",
			Configure: sdoCfg(func(func(uint64) mem.Level) sdo.LocationPredictor {
				return sdo.NewHybrid(512) // ≈4KB of predictor state
			}),
		},
		Perfect: {
			Name: "Perfect", Aliases: []string{"perfect"}, SDO: true, TableII: true,
			Description: "SDO with oracle predictor always predicting the correct level",
			Configure: sdoCfg(func(probe func(uint64) mem.Level) sdo.LocationPredictor {
				return sdo.Perfect{Probe: probe}
			}),
		},
	}
}

// RegisterScheme adds a protection scheme to the registry and returns
// its Variant id. Names and aliases must be unique across the registry
// (checked; a collision panics at init time). Registration order is
// deterministic — package-level var initialization — so Variant ids are
// stable within a build.
func RegisterScheme(info SchemeInfo) Variant {
	if info.Name == "" || info.Configure == nil {
		panic("core: RegisterScheme requires a Name and a Configure hook")
	}
	for _, s := range registry {
		if s.Name == info.Name {
			panic(fmt.Sprintf("core: scheme %q already registered", info.Name))
		}
		for _, a := range s.Aliases {
			for _, b := range info.Aliases {
				if a == b {
					panic(fmt.Sprintf("core: scheme alias %q already taken by %q", b, s.Name))
				}
			}
		}
	}
	registry = append(registry, info)
	return Variant(len(registry) - 1)
}

// The shadow-structure schemes: first-class variants outside Table II.
// Neither tracks taint — speculative loads execute immediately but fill
// per-core shadow structures (mem/spec.go) that are promoted on retire
// and discarded on squash, so squashed speculation leaves no
// cache-visible trace.
var (
	// SafeSpec fills a bounded per-core shadow cache and shadow TLB.
	SafeSpec = RegisterScheme(SchemeInfo{
		Name:        "SafeSpec",
		Aliases:     []string{"safespec", "safe-spec"},
		Description: "Shadow speculative cache+TLB; fills commit on retire, vanish on squash",
		Configure: func(pc *pipeline.Config, _ func(uint64) mem.Level) {
			pc.Protection = pipeline.ProtNone
			pc.Scheme = pipeline.SchemeSafeSpec
			pc.FPTransmitters = false
		},
	})
	// SpecBox labels speculative lines invisible until commit.
	SpecBox = RegisterScheme(SchemeInfo{
		Name:        "SpecBox",
		Aliases:     []string{"specbox", "spec-box"},
		Description: "Speculation-labelled cache lines, invisible to probes until commit",
		Configure: func(pc *pipeline.Config, _ func(uint64) mem.Level) {
			pc.Protection = pipeline.ProtNone
			pc.Scheme = pipeline.SchemeSpecBox
			pc.FPTransmitters = false
		},
	})
)

// Registered returns every registered variant in id order: the Table II
// rows first, then the registered additions. Sweeping this instead of
// Variants() covers the full defense zoo.
func Registered() []Variant {
	out := make([]Variant, len(registry))
	for i := range out {
		out[i] = Variant(i)
	}
	return out
}

// Schemes returns a copy of the registry's metadata in id order (the
// /variants endpoint document).
func Schemes() []SchemeInfo {
	out := make([]SchemeInfo, len(registry))
	copy(out, registry)
	return out
}

// schemeOf returns the registry entry for v, or nil when out of range.
func schemeOf(v Variant) *SchemeInfo {
	if v < 0 || int(v) >= len(registry) {
		return nil
	}
	return &registry[v]
}

// validNames returns every registered name, sorted, for error messages.
func validNames() string {
	names := make([]string, len(registry))
	for i, s := range registry {
		names[i] = s.Name
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
