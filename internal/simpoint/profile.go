package simpoint

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/isa"
)

// Interval is one profiled interval of the measurement window.
type Interval struct {
	// Start is the interval's first instruction as an absolute
	// committed-instruction boundary (warmup included), i.e. the
	// functional-warmup budget a checkpoint at the interval's start is
	// captured with.
	Start uint64
	// Len is the interval's length in committed instructions
	// (IntervalInstrs except possibly the last interval).
	Len uint64
	// Vec is the interval's basic-block vector after random projection
	// to projDim dimensions, normalized by interval length (so it is a
	// per-instruction code-execution profile, comparable across the
	// short tail interval and the full-size ones).
	Vec []float64
}

// Profile is the per-interval BBV profile of one program's measurement
// window, produced by a single functional-emulation pass.
type Profile struct {
	Config
	// WarmupInstrs is the window's start boundary (instructions skipped
	// before profiling begins).
	WarmupInstrs uint64
	// WindowInstrs is the number of instructions actually profiled:
	// min(requested window, instructions to halt).
	WindowInstrs uint64
	// ProfiledInstrs counts every functional instruction the pass
	// executed, warmup skip included (the profiling cost).
	ProfiledInstrs uint64
	// Blocks is the number of distinct static basic blocks observed.
	Blocks int
	// Intervals lists the window's intervals in execution order.
	Intervals []Interval
}

// bbvAccum collects one interval's raw features: per-block instruction
// counts plus the memory-locality counters behind the memDims features.
type bbvAccum struct {
	counts map[int]uint64 // block leader PC -> instructions executed in block

	loads, stores uint64
	lines         map[uint64]bool // cache lines touched this interval
	newLines      uint64          // ... of which never touched before
}

func (a *bbvAccum) add(leader int, n uint64) {
	if n == 0 {
		return
	}
	if a.counts == nil {
		a.counts = make(map[int]uint64)
	}
	a.counts[leader] += n
}

// touch records one data access for the locality features. globalLines is
// the profile-wide touched-line set (shared across intervals).
func (a *bbvAccum) touch(addr uint64, isLoad bool, globalLines map[uint64]bool) {
	if isLoad {
		a.loads++
	} else {
		a.stores++
	}
	line := addr >> 6
	if a.lines == nil {
		a.lines = make(map[uint64]bool)
	}
	a.lines[line] = true
	if !globalLines[line] {
		globalLines[line] = true
		a.newLines++
	}
}

// project folds the raw features into a vecDim-dimensional vector,
// normalized by the interval length: projDim randomly-projected BBV
// dimensions followed by the memDims locality rates. Blocks are visited
// in sorted-PC order so the floating-point summation order — and
// therefore the bit pattern of the result — is deterministic.
func (a *bbvAccum) project(seed uint64, intervalLen uint64) []float64 {
	vec := make([]float64, vecDim)
	if intervalLen == 0 {
		return vec
	}
	pcs := make([]int, 0, len(a.counts))
	for pc := range a.counts {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	for _, pc := range pcs {
		w := float64(a.counts[pc]) / float64(intervalLen)
		h := splitmix64(seed ^ uint64(pc)*0x9e3779b97f4a7c15)
		for d := 0; d < projDim; d++ {
			h = splitmix64(h)
			vec[d] += w * (2*unitFloat(h) - 1) // per-(block, dim) weight in [-1, 1)
		}
	}
	il := float64(intervalLen)
	vec[projDim+0] = float64(a.loads) / il
	vec[projDim+1] = float64(a.stores) / il
	vec[projDim+2] = float64(len(a.lines)) / il * 8 // lines/instr is small; ×8 puts it on the BBV scale
	vec[projDim+3] = float64(a.newLines) / il * 8
	return vec
}

// ProfileProgram runs the functional emulator over prog and collects the
// BBV profile of the measurement window [warmup, warmup+window): per
// interval of cfg.IntervalInstrs committed instructions, how many
// instructions were spent in each static basic block. A basic block is
// identified by its leader PC — the target of the control transfer that
// entered it — which is exactly the granularity the SimPoint methodology
// clusters on. Profiling needs no cache, TLB or predictor model: it is a
// pure arch.State walk, two orders of magnitude cheaper than detailed
// simulation.
//
// If the program halts before the window ends, the profile covers the
// instructions that exist; if it halts before the window starts, an
// error is returned (there is nothing to sample).
func ProfileProgram(prog *isa.Program, init func(*isa.Memory), warmup, window uint64, cfg Config) (*Profile, error) {
	cfg = cfg.WithDefaults()
	if window == 0 {
		return nil, fmt.Errorf("simpoint: zero-length measurement window")
	}
	data := isa.NewMemory()
	if init != nil {
		init(data)
	}
	var st arch.State
	for st.Instrs < warmup && !st.Halted {
		st.Step(prog, data)
	}
	if st.Halted {
		return nil, fmt.Errorf("simpoint: program halted after %d instructions, before the %d-instruction warmup boundary", st.Instrs, warmup)
	}

	p := &Profile{Config: cfg, WarmupInstrs: warmup}
	end := warmup + window
	var (
		acc         bbvAccum
		leader      = st.PC // first block of the window
		blockLen    uint64
		ivStart     = st.Instrs
		globalLines = make(map[uint64]bool)
		seen        = make(map[int]bool)
		noteBlock   = func(pc int) {
			if !seen[pc] {
				seen[pc] = true
				p.Blocks++
			}
		}
	)
	noteBlock(leader)
	closeInterval := func() {
		acc.add(leader, blockLen)
		blockLen = 0
		length := st.Instrs - ivStart
		p.Intervals = append(p.Intervals, Interval{
			Start: ivStart,
			Len:   length,
			Vec:   acc.project(cfg.Seed, length),
		})
		acc = bbvAccum{}
		ivStart = st.Instrs
	}
	for st.Instrs < end && !st.Halted {
		info := st.Step(prog, data)
		blockLen++
		if info.Mem {
			acc.touch(info.Addr, info.IsLoad, globalLines)
		}
		if info.Branch {
			// The branch ends its block; the next instruction (taken
			// target or fall-through) leads a new one.
			acc.add(leader, blockLen)
			blockLen = 0
			leader = st.PC
			noteBlock(leader)
		}
		if st.Instrs-ivStart >= cfg.IntervalInstrs || st.Halted || st.Instrs >= end {
			closeInterval()
			leader = st.PC
		}
	}
	p.WindowInstrs = st.Instrs - warmup
	p.ProfiledInstrs = st.Instrs
	if len(p.Intervals) == 0 {
		return nil, fmt.Errorf("simpoint: empty profile (window %d, interval %d)", window, cfg.IntervalInstrs)
	}
	return p, nil
}
