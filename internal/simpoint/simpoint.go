// Package simpoint implements SimPoint-style sampled simulation over the
// functional emulator (internal/arch): instead of paying cycle-level cost
// for a workload's whole measurement window, the window is split into
// fixed-size instruction intervals, each interval is summarised by its
// basic-block vector (BBV — how many instructions it spent in each static
// basic block), the intervals are clustered by BBV similarity, and only
// one representative interval per cluster is simulated in detailed mode.
// Whole-window statistics are then reconstructed as the weighted
// combination of the representatives' per-instruction rates.
//
// The method is sound for the same reason the paper's own SPEC SimPoint
// fragments are: program phases with the same code-execution profile have
// the same microarchitectural behaviour, so a phase's representative
// stands in for every interval of that phase. Everything here is
// deterministic — profiling is the functional emulator, clustering is
// seeded k-means — so the same (program, window, Config) always yields
// the same plan, which is what lets the simulation service cache sampled
// results content-addressed (DESIGN.md "Sampled simulation").
package simpoint

// Default sampling parameters (see Config).
const (
	DefaultIntervalInstrs = 5_000
	DefaultMaxK           = 8
	DefaultSeed           = 1
	// projDim is the dimension BBVs are randomly projected to before
	// clustering (the SimPoint trick that makes k-means cheap regardless
	// of how many static blocks the program has).
	projDim = 16
	// memDims are extra feature dimensions appended to the projected BBV:
	// load density, store density, distinct-cache-line touch rate and
	// new-cache-line touch rate per interval. Pure code vectors cannot
	// separate phases that execute identical blocks over different data
	// (streaming vs. re-use), which on this suite is the dominant source
	// of IPC variation the clustering must see.
	memDims = 4
	// vecDim is the full feature-vector dimension.
	vecDim = projDim + memDims
)

// Config holds the sampling parameters. The zero value selects the
// defaults.
type Config struct {
	// IntervalInstrs is the interval length in committed instructions
	// (default 5000). The measurement window is split into
	// ceil(window/IntervalInstrs) intervals; the last one may be short.
	IntervalInstrs uint64
	// MaxK caps the number of clusters (and therefore representative
	// intervals) the BIC search may choose (default 8).
	MaxK int
	// Seed seeds the BBV random projection and the k-means
	// initialisation (default 1). Same seed, same plan.
	Seed uint64
}

// WithDefaults fills zero fields with the package defaults.
func (c Config) WithDefaults() Config {
	if c.IntervalInstrs == 0 {
		c.IntervalInstrs = DefaultIntervalInstrs
	}
	if c.MaxK <= 0 {
		c.MaxK = DefaultMaxK
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	return c
}

// splitmix64 is the deterministic hash/PRNG step used for the random
// projection and the k-means seeding (no math/rand: reproducibility
// across Go versions is part of the cache-soundness contract).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a hash to [0, 1).
func unitFloat(x uint64) float64 { return float64(x>>11) / (1 << 53) }
