package simpoint

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/workload"
)

// profileFor builds a workload's BBV profile over [warmup, warmup+window).
func profileFor(t *testing.T, name string, warmup, window uint64, cfg Config) *Profile {
	t.Helper()
	wl, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, init := wl.Build()
	p, err := ProfileProgram(prog, init, warmup, window, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProfileShape(t *testing.T) {
	const warmup, window, interval = 2000, 20_000, 5000
	p := profileFor(t, "mcf_r", warmup, window, Config{IntervalInstrs: interval})
	if p.WarmupInstrs != warmup || p.WindowInstrs != window {
		t.Fatalf("window placement: %+v", p)
	}
	if p.ProfiledInstrs != warmup+window {
		t.Errorf("profiled %d instrs, want %d", p.ProfiledInstrs, warmup+window)
	}
	if len(p.Intervals) != 4 {
		t.Fatalf("%d intervals, want 4", len(p.Intervals))
	}
	var total uint64
	next := uint64(warmup)
	for i, iv := range p.Intervals {
		if iv.Start != next {
			t.Errorf("interval %d starts at %d, want %d", i, iv.Start, next)
		}
		if iv.Len == 0 || iv.Len > interval {
			t.Errorf("interval %d has length %d", i, iv.Len)
		}
		if len(iv.Vec) != vecDim {
			t.Errorf("interval %d vector has %d dims, want %d", i, len(iv.Vec), vecDim)
		}
		next += iv.Len
		total += iv.Len
	}
	if total != window {
		t.Errorf("interval lengths sum to %d, want %d", total, window)
	}
	if p.Blocks == 0 {
		t.Error("no basic blocks observed")
	}
}

func TestProfileErrors(t *testing.T) {
	wl, err := workload.ByName("mcf_r")
	if err != nil {
		t.Fatal(err)
	}
	prog, init := wl.Build()
	if _, err := ProfileProgram(prog, init, 1000, 0, Config{}); err == nil {
		t.Error("zero window accepted")
	}
	// Warmup far beyond the program's halt point.
	if _, err := ProfileProgram(prog, init, 1<<40, 1000, Config{}); err == nil {
		t.Error("warmup beyond halt accepted")
	}
}

func TestProfileAndPlanDeterminism(t *testing.T) {
	cfg := Config{IntervalInstrs: 2000, MaxK: 8, Seed: 7}
	a := profileFor(t, "gcc_r", 5000, 30_000, cfg)
	b := profileFor(t, "gcc_r", 5000, 30_000, cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (program, window, config) produced different profiles")
	}
	pa, err := a.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pa, pb) {
		t.Fatal("same profile clustered to different plans")
	}
	// A different seed changes the projection, so the vectors differ.
	c := profileFor(t, "gcc_r", 5000, 30_000, Config{IntervalInstrs: 2000, MaxK: 8, Seed: 8})
	if reflect.DeepEqual(a.Intervals[0].Vec, c.Intervals[0].Vec) {
		t.Error("reseeded projection produced identical vectors")
	}
}

func TestPlanInvariants(t *testing.T) {
	p := profileFor(t, "xz_r", 5000, 40_000, Config{IntervalInstrs: 2000})
	plan, err := p.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if plan.K < 1 || plan.K > plan.Config.MaxK {
		t.Fatalf("k=%d outside [1, %d]", plan.K, plan.Config.MaxK)
	}
	if len(plan.Reps) == 0 || len(plan.Reps) > plan.K {
		t.Fatalf("%d representatives for k=%d", len(plan.Reps), plan.K)
	}
	var wsum float64
	last := int64(-1)
	for _, r := range plan.Reps {
		wsum += r.Weight
		if int64(r.Start) <= last {
			t.Errorf("representatives not sorted by start: %+v", plan.Reps)
		}
		last = int64(r.Start)
		if r.Len == 0 || r.Weight <= 0 || r.Weight > 1 {
			t.Errorf("degenerate representative %+v", r)
		}
	}
	if math.Abs(wsum-1) > 1e-9 {
		t.Errorf("weights sum to %g, want 1", wsum)
	}
	if s := plan.SampledInstrs(); s == 0 || s > plan.WindowInstrs {
		t.Errorf("sampled %d of %d instrs", s, plan.WindowInstrs)
	}
	if bs := plan.Boundaries(); len(bs) != len(plan.Reps) {
		t.Errorf("%d boundaries for %d reps", len(bs), len(plan.Reps))
	}
}

func TestSingleIntervalPlanIsWholeWindow(t *testing.T) {
	// Window no larger than one interval: the plan must degenerate to a
	// single representative of weight 1 covering the whole window.
	p := profileFor(t, "mcf_r", 1000, 4000, Config{IntervalInstrs: 5000})
	plan, err := p.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if plan.K != 1 || len(plan.Reps) != 1 {
		t.Fatalf("k=%d reps=%d, want 1/1", plan.K, len(plan.Reps))
	}
	r := plan.Reps[0]
	if r.Start != 1000 || r.Len != 4000 || math.Abs(r.Weight-1) > 1e-12 {
		t.Fatalf("representative %+v, want the whole window at weight 1", r)
	}
}

func TestKmeansSeparatesPhases(t *testing.T) {
	// Two far-apart groups of near-duplicate vectors: BIC must choose
	// k=2 (splitting noise within a group gains nothing) and the
	// assignment must match the groups.
	var vecs [][]float64
	var weights []uint64
	for i := 0; i < 6; i++ {
		v := make([]float64, 4)
		v[0] = 1 + float64(i)*1e-6
		vecs = append(vecs, v)
		weights = append(weights, 1000)
	}
	for i := 0; i < 6; i++ {
		v := make([]float64, 4)
		v[1] = 5 + float64(i)*1e-6
		vecs = append(vecs, v)
		weights = append(weights, 1000)
	}
	cl := chooseK(vecs, weights, 8, 1)
	if cl.k != 2 {
		t.Fatalf("chooseK picked k=%d, want 2", cl.k)
	}
	for i := 1; i < 6; i++ {
		if cl.assign[i] != cl.assign[0] {
			t.Errorf("group A split across clusters: %v", cl.assign)
		}
		if cl.assign[6+i] != cl.assign[6] {
			t.Errorf("group B split across clusters: %v", cl.assign)
		}
	}
	if cl.assign[0] == cl.assign[6] {
		t.Errorf("groups merged: %v", cl.assign)
	}
	// Determinism: the same inputs cluster identically.
	again := chooseK(vecs, weights, 8, 1)
	if !reflect.DeepEqual(cl, again) {
		t.Error("chooseK is not deterministic")
	}
}

func TestKmeansFewerDistinctVectorsThanK(t *testing.T) {
	vecs := [][]float64{{1, 0}, {1, 0}, {1, 0}, {2, 0}}
	weights := []uint64{10, 10, 10, 10}
	cl := kmeans(vecs, weights, 4, 1)
	if cl.k > 2 {
		t.Errorf("k-means kept %d centers for 2 distinct vectors", cl.k)
	}
}
