package simpoint

import "math"

// clustering is the outcome of one k-means run: each vector's cluster
// assignment plus the converged centroids.
type clustering struct {
	k       int
	assign  []int
	centers [][]float64
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// kmeans runs seeded k-means++ initialisation followed by Lloyd
// iterations to convergence (or a fixed iteration cap). Weights are the
// intervals' instruction counts, so centroids are per-instruction
// averages rather than per-interval ones — a short tail interval pulls
// its cluster proportionally to its size.
//
// Everything is deterministic in (vecs, weights, k, seed): the k-means++
// draws come from splitmix64, ties in assignment go to the lowest
// cluster index, and all float accumulation runs in slice order.
func kmeans(vecs [][]float64, weights []uint64, k int, seed uint64) clustering {
	n := len(vecs)
	if k > n {
		k = n
	}
	dim := len(vecs[0])

	// k-means++ seeding: first center from a weighted draw, each further
	// center drawn with probability proportional to weight × squared
	// distance to the nearest existing center.
	centers := make([][]float64, 0, k)
	d2 := make([]float64, n)
	var totalW float64
	for _, w := range weights {
		totalW += float64(w)
	}
	rng := splitmix64(seed ^ 0xda7a0b1a5eed)
	draw := func(cum func(i int) float64, total float64) int {
		rng = splitmix64(rng)
		target := unitFloat(rng) * total
		var acc float64
		for i := 0; i < n; i++ {
			acc += cum(i)
			if acc > target {
				return i
			}
		}
		return n - 1
	}
	first := draw(func(i int) float64 { return float64(weights[i]) }, totalW)
	centers = append(centers, append([]float64(nil), vecs[first]...))
	for len(centers) < k {
		var total float64
		for i := range vecs {
			d2[i] = math.Inf(1)
			for _, c := range centers {
				if d := sqDist(vecs[i], c); d < d2[i] {
					d2[i] = d
				}
			}
			total += float64(weights[i]) * d2[i]
		}
		if total == 0 {
			// Fewer distinct vectors than k: stop early, duplicates would
			// only create empty clusters.
			break
		}
		next := draw(func(i int) float64 { return float64(weights[i]) * d2[i] }, total)
		centers = append(centers, append([]float64(nil), vecs[next]...))
	}
	k = len(centers)

	assign := make([]int, n)
	const maxIters = 50
	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, v := range vecs {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := sqDist(v, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		sums := make([][]float64, k)
		wsum := make([]float64, k)
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, v := range vecs {
			c := assign[i]
			w := float64(weights[i])
			wsum[c] += w
			for d := range v {
				sums[c][d] += w * v[d]
			}
		}
		for c := range centers {
			if wsum[c] == 0 {
				continue // empty cluster keeps its old center
			}
			for d := range centers[c] {
				centers[c][d] = sums[c][d] / wsum[c]
			}
		}
	}
	return clustering{k: k, assign: assign, centers: centers}
}

// bic scores a clustering with the Bayesian Information Criterion under
// a spherical-Gaussian model (the SimPoint paper's criterion): the
// log-likelihood of the data minus a complexity penalty of ½·p·log(n)
// for p = k·dim + 1 free parameters. Higher is better. Weights are
// normalized to sum to n so a short tail interval counts for less
// without the instruction-count scale swamping the penalty term, and
// the variance is floored at varFloor so a perfect clustering (every
// interval its own centroid) cannot drive the likelihood to infinity
// and unconditionally win the k search.
func bic(vecs [][]float64, weights []uint64, cl clustering, varFloor float64) float64 {
	n := len(vecs)
	dim := len(vecs[0])
	var totalW, ss float64
	for i, v := range vecs {
		w := float64(weights[i])
		totalW += w
		ss += w * sqDist(v, cl.centers[cl.assign[i]])
	}
	variance := ss / (totalW * float64(dim))
	if variance < varFloor {
		variance = varFloor
	}
	// Per-point log-likelihood of a spherical Gaussian at distance d from
	// its centroid, plus the log mixing weight of its cluster.
	clusterW := make([]float64, cl.k)
	for i := range vecs {
		clusterW[cl.assign[i]] += float64(weights[i])
	}
	norm := float64(n) / totalW
	var ll float64
	for i, v := range vecs {
		w := float64(weights[i]) * norm
		d2 := sqDist(v, cl.centers[cl.assign[i]])
		ll += w * (math.Log(clusterW[cl.assign[i]]/totalW) -
			0.5*float64(dim)*math.Log(2*math.Pi*variance) -
			d2/(2*variance))
	}
	params := float64(cl.k*dim + 1)
	return ll - 0.5*params*math.Log(float64(n))
}

// varianceFloor derives bic's variance guard from the BBVs' own scale: a
// small fraction of their weighted mean squared norm. Distances below
// this floor are interval-boundary jitter within one program phase
// (block counts shifted by where the 5000-instruction cut landed), not
// phase structure — clusterings that differ only below the floor score
// identical likelihoods, so BIC's penalty makes the coarser one win
// instead of rewarding ever-finer splits of noise.
func varianceFloor(vecs [][]float64, weights []uint64) float64 {
	dim := len(vecs[0])
	zero := make([]float64, dim)
	var totalW, ss float64
	for i, v := range vecs {
		w := float64(weights[i])
		totalW += w
		ss += w * sqDist(v, zero)
	}
	msn := ss / (totalW * float64(dim))
	const floorFrac, floorAbs = 1e-4, 1e-12
	if f := msn * floorFrac; f > floorAbs {
		return f
	}
	return floorAbs
}

// chooseK runs kmeans for k = 1..maxK, scores each with BIC, and picks
// the smallest k whose score is within 10% of the observed BIC range
// from the maximum — the SimPoint heuristic that prefers fewer
// representatives when the marginal fit gain is small. (The threshold is
// range-based, not max-relative, because BIC values are routinely
// negative.)
func chooseK(vecs [][]float64, weights []uint64, maxK int, seed uint64) clustering {
	if maxK > len(vecs) {
		maxK = len(vecs)
	}
	floor := varianceFloor(vecs, weights)
	runs := make([]clustering, 0, maxK)
	scores := make([]float64, 0, maxK)
	minB, maxB := math.Inf(1), math.Inf(-1)
	for k := 1; k <= maxK; k++ {
		cl := kmeans(vecs, weights, k, seed+uint64(k))
		b := bic(vecs, weights, cl, floor)
		runs = append(runs, cl)
		scores = append(scores, b)
		if b < minB {
			minB = b
		}
		if b > maxB {
			maxB = b
		}
	}
	threshold := maxB - 0.1*(maxB-minB)
	for i, b := range scores {
		if b >= threshold {
			return runs[i]
		}
	}
	return runs[len(runs)-1]
}
