package simpoint

import (
	"fmt"
	"math"
	"sort"
)

// Rep is one representative interval of a sampling plan: the interval
// closest to its cluster's centroid, standing in for the whole cluster
// with the cluster's instruction-count fraction as its weight.
type Rep struct {
	// Index is the representative's interval index within the window.
	Index int
	// Start is the representative's first instruction as an absolute
	// boundary (the functional-warmup budget of its checkpoint).
	Start uint64
	// Len is the representative's length in committed instructions.
	Len uint64
	// Weight is the fraction of the window's instructions its cluster
	// covers. Weights sum to 1.
	Weight float64
}

// Plan is a sampling plan: which intervals to simulate in detail and
// with what weights to recombine their stats into whole-window
// estimates.
type Plan struct {
	Config
	// WarmupInstrs / WindowInstrs mirror the profile the plan was built
	// from.
	WarmupInstrs uint64
	WindowInstrs uint64
	// ProfiledInstrs is the functional-profiling cost (see Profile).
	ProfiledInstrs uint64
	// NumIntervals is the number of intervals the window was split into.
	NumIntervals int
	// Blocks is the number of distinct static basic blocks observed.
	Blocks int
	// K is the chosen number of clusters (= len(Reps)).
	K int
	// Reps lists the representatives in window order (ascending Start).
	Reps []Rep
	// ErrEstimate is an a-priori sampling-error proxy: the weighted mean
	// distance of intervals to their cluster centroid, normalized by the
	// mean BBV vector norm. 0 means every interval is identical to its
	// representative (the estimate is exact); larger values mean more
	// within-cluster heterogeneity and thus more reconstruction risk.
	ErrEstimate float64
}

// SampledInstrs is the number of instructions the plan simulates in
// detail (the sum of representative lengths).
func (p *Plan) SampledInstrs() uint64 {
	var n uint64
	for _, r := range p.Reps {
		n += r.Len
	}
	return n
}

// Boundaries returns the representatives' start boundaries in ascending
// order — the checkpoint-capture schedule for arch.CaptureSeries.
func (p *Plan) Boundaries() []uint64 {
	out := make([]uint64, len(p.Reps))
	for i, r := range p.Reps {
		out[i] = r.Start
	}
	return out
}

// Cluster builds the sampling plan from a profile: cluster the interval
// BBVs with BIC-selected k, pick per cluster the interval closest to the
// centroid as representative, and weight it by its cluster's share of
// the window's instructions.
func (pr *Profile) Cluster() (*Plan, error) {
	n := len(pr.Intervals)
	if n == 0 {
		return nil, fmt.Errorf("simpoint: cannot cluster an empty profile")
	}
	vecs := make([][]float64, n)
	weights := make([]uint64, n)
	for i, iv := range pr.Intervals {
		vecs[i] = iv.Vec
		weights[i] = iv.Len
	}
	cl := chooseK(vecs, weights, pr.MaxK, pr.Seed)

	// Representative per cluster: the interval nearest its centroid,
	// lowest index on ties.
	repOf := make([]int, cl.k)
	repDist := make([]float64, cl.k)
	clInstrs := make([]uint64, cl.k)
	for c := range repOf {
		repOf[c] = -1
		repDist[c] = math.Inf(1)
	}
	for i := range vecs {
		c := cl.assign[i]
		clInstrs[c] += weights[i]
		if d := sqDist(vecs[i], cl.centers[c]); d < repDist[c] {
			repOf[c], repDist[c] = i, d
		}
	}

	plan := &Plan{
		Config:         pr.Config,
		WarmupInstrs:   pr.WarmupInstrs,
		WindowInstrs:   pr.WindowInstrs,
		ProfiledInstrs: pr.ProfiledInstrs,
		NumIntervals:   n,
		Blocks:         pr.Blocks,
	}
	var totalInstrs uint64
	for _, w := range weights {
		totalInstrs += w
	}
	for c, idx := range repOf {
		if idx < 0 {
			continue // empty cluster (k was clamped by duplicate vectors)
		}
		iv := pr.Intervals[idx]
		plan.Reps = append(plan.Reps, Rep{
			Index:  idx,
			Start:  iv.Start,
			Len:    iv.Len,
			Weight: float64(clInstrs[c]) / float64(totalInstrs),
		})
	}
	sort.Slice(plan.Reps, func(i, j int) bool { return plan.Reps[i].Start < plan.Reps[j].Start })
	plan.K = len(plan.Reps)

	// Error proxy: weighted mean centroid distance over mean vector norm.
	var dist, norm float64
	for i, v := range vecs {
		w := float64(weights[i]) / float64(totalInstrs)
		dist += w * math.Sqrt(sqDist(v, cl.centers[cl.assign[i]]))
		norm += w * math.Sqrt(sqDist(v, make([]float64, len(v))))
	}
	if norm > 0 {
		plan.ErrEstimate = dist / norm
	}
	return plan, nil
}
