// Package repro is a from-scratch Go reproduction of "Speculative
// Data-Oblivious Execution: Mobilizing Safe Prediction For Safe and
// Efficient Speculative Execution" (Yu, Mantri, Torrellas, Morrison,
// Fletcher — ISCA 2020).
//
// The implementation lives under internal/:
//
//	internal/isa        instruction set, sparse memory, builder, golden executor
//	internal/bpred      tournament branch predictor + BTB
//	internal/mem        caches (banks/MSHRs/slices), TLB, DRAM, DO lookup path
//	internal/coherence  directory-based MESI across cores
//	internal/pipeline   out-of-order core with STT taint tracking and Obl-Lds
//	internal/sdo        the SDO framework (§IV) and location predictors (§V-D)
//	internal/workload   SPEC17-like kernels + random program generator
//	internal/attack     in-simulator Spectre V1 and FP-channel penetration tests
//	internal/harness    the §VIII evaluation: Figures 6-8, Tables I-III
//	internal/core       public facade: Config, Machine, Result, Table II variants
//
// Executables: cmd/sdosim (single run), cmd/experiments (regenerate every
// table and figure), cmd/pentest (security evaluation). Runnable examples
// are under examples/. The benchmarks in bench_test.go regenerate each
// figure/table at a reduced budget; see EXPERIMENTS.md.
package repro
