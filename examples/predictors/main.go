// Predictors: compare the paper's location predictors (§V-D) on one
// workload — execution time, squash counts, and prediction quality — the
// per-benchmark view behind Figures 6/8 and Table III.
//
//	go run ./examples/predictors [workload]
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	name := "xalancbmk_r"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	wl, err := workload.ByName(name)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s — %s\n(Futuristic attack model, 40k warmup + 40k measured instructions)\n\n",
		wl.Name, wl.Desc)

	run := func(v core.Variant) core.Result {
		prog, init := wl.Build()
		m := core.NewMachine(core.Config{
			Variant: v, Model: pipeline.Futuristic,
			WarmupInstrs: 40_000, MaxInstrs: 40_000,
		}, prog, init)
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := run(core.Unsafe)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "variant\tnorm. time\tObl-Lds\tfails\tsquashes\tprecise%%\taccurate%%\t\n")
	for _, v := range []core.Variant{core.STTLd, core.StaticL1, core.StaticL2, core.StaticL3, core.Hybrid, core.Perfect} {
		r := run(v)
		total := r.PredPrecise + r.PredImprecise + r.PredInaccurate
		var prec, acc float64
		if total > 0 {
			prec = float64(r.PredPrecise) / float64(total) * 100
			acc = float64(r.PredPrecise+r.PredImprecise) / float64(total) * 100
		}
		fmt.Fprintf(tw, "%s\t%.3f\t%d\t%d\t%d\t%.1f\t%.1f\t\n",
			v, float64(r.Cycles)/float64(base.Cycles),
			r.OblIssued, r.OblFail, r.TotalSquashes(), prec, acc)
	}
	tw.Flush()
	fmt.Println("\nStatic L1 squashes the most (fails whenever data is deeper); Static L3")
	fmt.Println("rarely squashes but waits the longest; Hybrid learns each load's level.")
}
