// Workloads: survey the full benchmark suite under one configuration —
// the per-benchmark characterization behind Figure 6 — and demonstrate
// running a custom program through the same machinery.
//
//	go run ./examples/workloads
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	fmt.Println("Suite characterization under STT{ld} vs STT+SDO(Hybrid), Spectre model")
	fmt.Println("(30k warmup + 30k measured instructions per run):")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "benchmark\tunsafe IPC\tSTT time\tSDO time\tdelayed loads\tObl-Lds\t\n")
	for _, wl := range workload.All() {
		run := func(v core.Variant) core.Result {
			prog, init := wl.Build()
			m := core.NewMachine(core.Config{
				Variant: v, Model: pipeline.Spectre,
				WarmupInstrs: 30_000, MaxInstrs: 30_000,
			}, prog, init)
			r, err := m.Run()
			if err != nil {
				log.Fatal(err)
			}
			return r
		}
		base := run(core.Unsafe)
		stt := run(core.STTLd)
		sdo := run(core.Hybrid)
		fmt.Fprintf(tw, "%s\t%.2f\t%.3f\t%.3f\t%d\t%d\t\n",
			wl.Name, base.IPC(),
			float64(stt.Cycles)/float64(base.Cycles),
			float64(sdo.Cycles)/float64(base.Cycles),
			stt.DelayedLoads, sdo.OblIssued)
	}
	tw.Flush()

	// A custom program runs through exactly the same API.
	fmt.Println("\nCustom program (sum of squares 1..1000) on the Hybrid machine:")
	prog := isa.NewBuilder().
		MovI(isa.R1, 1).
		MovI(isa.R2, 1001).
		MovI(isa.R3, 0).
		Label("loop").
		Mul(isa.R4, isa.R1, isa.R1).
		Add(isa.R3, isa.R3, isa.R4).
		AddI(isa.R1, isa.R1, 1).
		Blt(isa.R1, isa.R2, "loop").
		Halt().
		MustBuild()
	m := core.NewMachine(core.Config{Variant: core.Hybrid}, prog, nil)
	res, err := m.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  result=%d, %d cycles (IPC %.2f)\n", m.Regs()[isa.R3], res.Cycles, res.IPC())
}
