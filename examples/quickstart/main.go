// Quickstart: build a small program with the ISA builder, run it on an
// insecure core and on an STT+SDO core, and compare results and timing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/pipeline"
)

func main() {
	// A toy "database": an index array whose entries point into a value
	// table. Summing table[index[i]] creates load→load dependences, the
	// pattern speculative-execution defenses slow down.
	const (
		indexBase  = 0x1_0000
		tableBase  = 0x10_0000
		tableSlots = 1 << 15 // 256KB: L2-resident
		n          = 6000
	)
	prog := isa.NewBuilder().
		// Prime the value table (sequential, untainted-address loads), as a
		// real program would have touched its data before the hot loop.
		MovI(isa.R1, tableBase).
		MovI(isa.R2, 0).
		MovI(isa.R3, tableSlots/8). // one load per cache line
		Label("prime").
		Load(isa.R4, isa.R1, 0).
		AddI(isa.R1, isa.R1, 64).
		AddI(isa.R2, isa.R2, 1).
		Blt(isa.R2, isa.R3, "prime").
		// The hot loop: sum += table[index[i]].
		MovI(isa.R1, indexBase).
		MovI(isa.R2, 0). // i
		MovI(isa.R3, n).
		MovI(isa.R4, 0).         // sum
		MovI(isa.R5, tableBase). //
		Label("loop").
		Load(isa.R6, isa.R1, 0). // idx = index[i]
		Add(isa.R6, isa.R6, isa.R5).
		Load(isa.R7, isa.R6, 0). // v = table[idx]  (tainted address!)
		Add(isa.R4, isa.R4, isa.R7).
		AddI(isa.R1, isa.R1, 8).
		AddI(isa.R2, isa.R2, 1).
		Blt(isa.R2, isa.R3, "loop").
		Halt().
		MustBuild()

	init := func(m *isa.Memory) {
		for i := 0; i < n; i++ {
			m.Write64(indexBase+uint64(i*8), uint64(i*2654435761%tableSlots)*8)
		}
		for i := 0; i < tableSlots; i++ {
			m.Write64(tableBase+uint64(i*8), uint64(i%977))
		}
	}

	for _, cfg := range []core.Config{
		{Variant: core.Unsafe},
		{Variant: core.STTLd, Model: pipeline.Futuristic},
		{Variant: core.Hybrid, Model: pipeline.Futuristic},
	} {
		m := core.NewMachine(cfg, prog, init)
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s (%s): sum=%d, %d instructions in %d cycles (IPC %.2f)\n",
			cfg.Variant, cfg.Model, m.Regs()[isa.R4], res.Committed, res.Cycles, res.IPC())
	}
	fmt.Println("\nAll three configurations compute the same sum — defenses change")
	fmt.Println("timing, never architectural results.")
}
