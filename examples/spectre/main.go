// Spectre demo: run the in-simulator Spectre V1 attack (the paper's
// Figure 1) against the insecure baseline and against STT+SDO, and show
// what the attacker's flush+reload scan recovers in each case.
//
//	go run ./examples/spectre
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/pipeline"
)

func main() {
	secret := []byte("Go!")
	fmt.Printf("victim secret: %q (%x)\n\n", secret, secret)

	for _, v := range []core.Variant{core.Unsafe, core.STTLd, core.Hybrid} {
		out, err := attack.RunSpectreV1(v, pipeline.Spectre, secret)
		if err != nil {
			log.Fatal(err)
		}
		status := "attack BLOCKED"
		if out.Leaked {
			status = "attack SUCCEEDED"
		}
		fmt.Printf("%-10s recovered %q (%x) — %s\n", v, printable(out.Recovered), out.Recovered, status)
		fmt.Printf("           (transient execution: %d mispredicted bounds checks, %d Obl-Lds issued)\n",
			out.Stats.BranchMispredicts, out.Stats.OblIssued)
	}

	fmt.Println("\nThe transient out-of-bounds load runs on every configuration; what")
	fmt.Println("differs is whether the dependent transmitter may leave a secret-")
	fmt.Println("dependent footprint: Unsafe fills B[secret*64] into the cache, STT")
	fmt.Println("never executes the transmitter while tainted, and SDO executes it as")
	fmt.Println("a data-oblivious Obl-Ld that changes no cache state.")
}

func printable(b []byte) string {
	out := make([]byte, len(b))
	for i, c := range b {
		if c >= 32 && c < 127 {
			out[i] = c
		} else {
			out[i] = '.'
		}
	}
	return string(out)
}
