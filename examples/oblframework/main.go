// Oblframework: use the §IV SDO framework directly — turn an arbitrary
// transmitter into an SDO operation by writing DO variants and a DO
// predictor — and compare it against the naïve execute-all strategy the
// paper starts from.
//
// The transmitter here is the paper's own running example: a floating-point
// multiply whose hardware latency depends on whether its operands are
// subnormal (§I-A).
//
//	go run ./examples/oblframework
package main

import (
	"fmt"
	"math"

	"repro/internal/isa"
	"repro/internal/sdo"
)

type fpArgs struct{ a, b uint64 }

func fmul(x fpArgs) uint64 {
	return isa.EvalALU(isa.Instr{Op: isa.OpFMul}, x.a, x.b, 0)
}

// The two execution equivalence classes and their (constant) costs.
const (
	fastLatency = 4  // hardware FP unit
	slowLatency = 28 // microcoded subnormal path
)

// oblFast evaluates the normal-operand mode only (Definition 1: success
// implies the result is f(args); fail leaves it undefined).
func oblFast(x fpArgs) (bool, uint64) {
	r := fmul(x)
	if isa.FPSlowPath(isa.OpFMul, x.a, x.b, r) {
		return false, 0
	}
	return true, r
}

// oblSlow evaluates the subnormal mode only.
func oblSlow(x fpArgs) (bool, uint64) {
	r := fmul(x)
	if !isa.FPSlowPath(isa.OpFMul, x.a, x.b, r) {
		return false, 0
	}
	return true, r
}

func main() {
	fb := math.Float64bits
	inputs := []fpArgs{
		{fb(1.5), fb(2.0)},
		{fb(3.25), fb(0.5)},
		{fb(math.SmallestNonzeroFloat64), fb(2)}, // subnormal operand (rare)
		{fb(123.0), fb(0.25)},
		{fb(2.0), fb(8.0)},
	}

	// Strategy 1 (§I-A "naïve"): execute every variant, wait for the
	// slowest. Secure, but always pays worst case.
	naive := &sdo.ExecuteAll[fpArgs, uint64]{
		Variants: []sdo.Variant[fpArgs, uint64]{oblFast, oblSlow},
		Cost: func(i int) uint64 {
			if i == 0 {
				return fastLatency
			}
			return slowLatency
		},
	}

	// Strategy 2 (the paper): predict one equivalence class. A static
	// "always fast" predictor, like the SDO configurations evaluate.
	op := &sdo.Operation[fpArgs, uint64]{
		Name:      "Obl-fmul",
		Reference: fmul,
		Variants:  []sdo.Variant[fpArgs, uint64]{oblFast},
		Predictor: sdo.StaticDOPredictor(0),
	}

	fmt.Println("transmitter: fmul(a,b) — latency depends on subnormal operands")
	fmt.Printf("%-28s %-22s %s\n", "inputs", "naive (execute-all)", "SDO (predict fast)")
	var naiveTotal, sdoTotal uint64
	for _, in := range inputs {
		_, _, lat := naive.RunCost(in)
		naiveTotal += lat

		iss := op.Issue(0x40, in)
		sdoLat := uint64(fastLatency)
		outcome := "hit (forward early, verify at untaint)"
		if res := op.Resolve(0x40, in, iss); res.Squash {
			// Misprediction: squash at untaint and re-execute f.
			sdoLat = fastLatency + slowLatency
			outcome = "MISS -> squash + re-execute"
		}
		sdoTotal += sdoLat
		fmt.Printf("a=%-10.3g b=%-10.3g  %2d cycles              %2d cycles  %s\n",
			math.Float64frombits(in.a), math.Float64frombits(in.b), lat, sdoLat, outcome)
	}
	fmt.Printf("\ntotals: naive %d cycles, SDO %d cycles — prediction wins when the\n",
		naiveTotal, sdoTotal)
	fmt.Println("common case dominates, which is exactly the paper's bet (§I-A).")
}
