// Command benchrecord runs the repository's benchmarks and appends the
// results to a dated trajectory file, building a performance history
// alongside the code:
//
//	benchrecord                             # all benchmarks -> BENCH_<YYYYMMDD>.json
//	benchrecord -bench 'OblLoad|Hybrid'     # subset
//	benchrecord -benchtime 100ms -count 3   # forwarded to go test
//	benchrecord -manual cluster-sweep-3node -ns 42.7e9   # externally timed entry
//
// Each invocation appends one record {date, git_sha, go_version,
// benchmarks[]} to BENCH_<YYYYMMDD>.json in the current directory (a
// JSON array; same-day runs accumulate). Records keep ns/op, B/op,
// allocs/op and any b.ReportMetric custom series (sim-instrs/s, ...),
// so a later plot over the dated files shows the trajectory of every
// metric against commits.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Iters       int64              `json:"iters"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Record is one benchrecord invocation.
type Record struct {
	Date       string      `json:"date"`
	GitSHA     string      `json:"git_sha"`
	GoVersion  string      `json:"go_version"`
	Bench      string      `json:"bench"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("benchrecord", flag.ContinueOnError)
	var (
		bench     = fs.String("bench", ".", "benchmark regexp, forwarded to go test -bench")
		benchtime = fs.String("benchtime", "", "forwarded to go test -benchtime (empty: go default)")
		count     = fs.Int("count", 1, "forwarded to go test -count")
		pkg       = fs.String("pkg", ".", "package to benchmark")
		dir       = fs.String("dir", ".", "directory the BENCH_<date>.json file is written to")
		dry       = fs.Bool("n", false, "print the record instead of appending it")

		manual = fs.String("manual", "", "record one externally measured entry under this name instead of running go test (CI wall-clock timings, e.g. 1-node vs 3-node sweeps)")
		ns     = fs.Float64("ns", 0, "with -manual: the measured duration in nanoseconds")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *manual != "" {
		if *ns <= 0 {
			fmt.Fprintln(os.Stderr, "benchrecord: -manual requires -ns > 0")
			return 2
		}
		return emit(*dir, *dry, "manual:"+*manual, []Benchmark{
			{Name: *manual, Iters: 1, NsPerOp: *ns},
		})
	}

	gotest := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		gotest = append(gotest, "-benchtime", *benchtime)
	}
	gotest = append(gotest, *pkg)
	fmt.Fprintln(os.Stderr, "benchrecord: go", strings.Join(gotest, " "))
	cmd := exec.Command("go", gotest...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrecord: go test: %v\n%s", err, out)
		return 1
	}

	benches := parseBench(out)
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchrecord: no benchmark lines in go test output")
		return 1
	}
	return emit(*dir, *dry, *bench, benches)
}

// emit appends (or with dry, prints) one record built from benches.
func emit(dir string, dry bool, bench string, benches []Benchmark) int {
	now := time.Now().UTC()
	rec := Record{
		Date:       now.Format(time.RFC3339),
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		Bench:      bench,
		Benchmarks: benches,
	}
	if dry {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(rec)
		return 0
	}
	path := fmt.Sprintf("%s/BENCH_%s.json", dir, now.Format("20060102"))
	if err := appendRecord(path, rec); err != nil {
		fmt.Fprintln(os.Stderr, "benchrecord:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchrecord: %d benchmarks appended to %s\n", len(benches), path)
	return 0
}

// parseBench extracts result lines of the form
//
//	BenchmarkName-8   1000   1234 ns/op   56 B/op   7 allocs/op   8.9 custom/s
//
// from go test output. Units beyond the standard three land in Metrics.
func parseBench(out []byte) []Benchmark {
	var benches []Benchmark
	sc := bufio.NewScanner(bytes.NewReader(out))
	for sc.Scan() {
		f := strings.Fields(sc.Text())
		if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(f[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: strings.TrimSuffix(f[0], "-"+strconv.Itoa(runtime.GOMAXPROCS(0))), Iters: iters}
		for i := 2; i+1 < len(f); i += 2 {
			v, err := strconv.ParseFloat(f[i], 64)
			if err != nil {
				continue
			}
			switch f[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			default:
				if b.Metrics == nil {
					b.Metrics = make(map[string]float64)
				}
				b.Metrics[f[i+1]] = v
			}
		}
		benches = append(benches, b)
	}
	return benches
}

// gitSHA returns the current commit (with a -dirty suffix when the tree
// has modifications), or "unknown" outside a git checkout.
func gitSHA() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	sha := strings.TrimSpace(string(out))
	if err := exec.Command("git", "diff", "--quiet", "HEAD").Run(); err != nil {
		sha += "-dirty"
	}
	return sha
}

// appendRecord appends rec to the JSON array at path, creating it on
// first use.
func appendRecord(path string, rec Record) error {
	var recs []Record
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &recs); err != nil {
			return fmt.Errorf("%s exists but is not a benchrecord file: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	recs = append(recs, rec)
	buf, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
