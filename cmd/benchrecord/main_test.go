package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseBench(t *testing.T) {
	out := []byte(`goos: linux
goarch: amd64
pkg: repro
BenchmarkNormalLoad-8   	 5070324	        11.53 ns/op
BenchmarkOblLoad/L2-8   	  406249	       150.4 ns/op	      16 B/op	       1 allocs/op
BenchmarkSimulatorThroughput-8	       1	61876217 ns/op	    808105 sim-instrs/s	16184560 B/op	  167151 allocs/op
PASS
ok  	repro	1.2s
`)
	benches := parseBench(out)
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(benches))
	}
	if b := benches[0]; b.NsPerOp != 11.53 || b.Iters != 5070324 || b.AllocsPerOp != 0 {
		t.Errorf("NormalLoad = %+v", b)
	}
	if b := benches[1]; b.BytesPerOp != 16 || b.AllocsPerOp != 1 {
		t.Errorf("OblLoad = %+v", b)
	}
	if b := benches[2]; b.Metrics["sim-instrs/s"] != 808105 {
		t.Errorf("SimulatorThroughput metrics = %+v", b.Metrics)
	}
}

func TestAppendRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_20260808.json")
	rec := Record{Date: "2026-08-08T00:00:00Z", GitSHA: "abc", GoVersion: "go1.24.0",
		Benchmarks: []Benchmark{{Name: "BenchmarkX", Iters: 1, NsPerOp: 2}}}
	if err := appendRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	if err := appendRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var recs []Record
	if err := json.Unmarshal(raw, &recs); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Benchmarks[0].Name != "BenchmarkX" {
		t.Fatalf("file holds %+v", recs)
	}
	// A non-benchrecord file is refused rather than clobbered.
	bad := filepath.Join(t.TempDir(), "BENCH_x.json")
	os.WriteFile(bad, []byte(`{"not":"an array"}`), 0o644)
	if err := appendRecord(bad, rec); err == nil {
		t.Error("appendRecord overwrote a foreign file")
	}
}
