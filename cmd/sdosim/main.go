// Command sdosim runs one benchmark on one simulated configuration and
// prints detailed statistics — the equivalent of a single gem5 run in the
// paper's methodology.
//
// Usage:
//
//	sdosim -workload mcf_r -variant hybrid -model futuristic -instrs 60000
//	sdosim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/pipeline"
	"repro/internal/workload"
)

func main() {
	var (
		wlName  = flag.String("workload", "mcf_r", "workload name (see -list)")
		variant = flag.String("variant", "unsafe", "design variant (Table II): unsafe, stt, stt{ld+fp}, l1, l2, l3, hybrid, perfect")
		model   = flag.String("model", "spectre", "attack model: spectre or futuristic")
		instrs  = flag.Uint64("instrs", 60_000, "committed instructions to measure")
		warmup  = flag.Uint64("warmup", 50_000, "committed instructions of cache warmup")
		list    = flag.Bool("list", false, "list workloads and variants, then exit")
		trace   = flag.String("trace", "", "write a cycle-by-cycle event trace to this file ('-' for stderr)")
	)
	flag.Parse()

	if *list {
		fmt.Println("Workloads:")
		for _, w := range workload.All() {
			fmt.Printf("  %-14s %s\n", w.Name, w.Desc)
		}
		fmt.Println("\nVariants (Table II):")
		harness.WriteTableII(os.Stdout)
		return
	}

	wl, err := workload.ByName(*wlName)
	if err != nil {
		fatal(err)
	}
	v, err := core.ParseVariant(strings.ToLower(*variant))
	if err != nil {
		fatal(err)
	}
	m := pipeline.Spectre
	if strings.EqualFold(*model, "futuristic") {
		m = pipeline.Futuristic
	} else if !strings.EqualFold(*model, "spectre") {
		fatal(fmt.Errorf("unknown attack model %q", *model))
	}

	prog, init := wl.Build()
	machine := core.NewMachine(core.Config{
		Variant: v, Model: m, WarmupInstrs: *warmup, MaxInstrs: *instrs,
	}, prog, init)
	if *trace != "" {
		w := os.Stderr
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		machine.Core().SetTracer(w)
	}
	res, err := machine.Run()
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s on %s (%s model), %d measured instructions\n\n",
		v, wl.Name, m, res.Committed)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	row := func(k string, val any) { fmt.Fprintf(tw, "%s\t%v\t\n", k, val) }
	row("cycles", res.Cycles)
	row("IPC", fmt.Sprintf("%.3f", res.IPC()))
	row("loads", res.Loads)
	row("stores", res.Stores)
	row("branch mispredicts", res.BranchMispredicts)
	row("squashes (total)", res.TotalSquashes())
	for cause, n := range res.SquashesByCause() {
		if n > 0 {
			row("  "+cause, n)
		}
	}
	row("STT delayed loads", res.DelayedLoads)
	row("STT load delay cycles", res.LoadDelayCycles)
	row("STT delayed FP ops", res.DelayedFPs)
	row("delayed branch resolutions", res.DelayedResolutions)
	row("Obl-Ld issued", res.OblIssued)
	row("Obl-Ld success / fail", fmt.Sprintf("%d / %d", res.OblSuccess, res.OblFail))
	row("Obl-Ld predicted-DRAM delays", res.OblPredMem)
	row("validations / exposures", fmt.Sprintf("%d / %d", res.Validations, res.Exposures))
	row("validation commit stalls", res.ValidationStall)
	row("SDO FP issued / failed", fmt.Sprintf("%d / %d", res.FPSDOIssued, res.FPSDOFail))
	row("prediction precise/imprecise/inaccurate",
		fmt.Sprintf("%d / %d / %d", res.PredPrecise, res.PredImprecise, res.PredInaccurate))
	row("L1D hits/misses", fmt.Sprintf("%d / %d", res.L1DHits, res.L1DMisses))
	row("L2 hits/misses", fmt.Sprintf("%d / %d", res.L2Hits, res.L2Misses))
	row("DRAM row hits/misses", fmt.Sprintf("%d / %d", res.DRAMRowHits, res.DRAMRowMisses))
	tw.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdosim:", err)
	os.Exit(1)
}
