// Command sdosim runs one benchmark on one simulated configuration and
// prints detailed statistics — the equivalent of a single gem5 run in the
// paper's methodology.
//
// Usage:
//
//	sdosim -workload mcf_r -variant hybrid -model futuristic -instrs 60000
//	sdosim -workload mcf_r -variant hybrid -trace trace.json -trace-format chrome
//	sdosim -workload mcf_r -trace - -trace-events sdo,squash
//	sdosim -workload mcf_r -interval 1000 -interval-out intervals.json
//	sdosim -list
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/pipeline"
	"repro/internal/simpoint"
	"repro/internal/workload"
)

func main() {
	var (
		wlName      = flag.String("workload", "mcf_r", "workload name (see -list)")
		variant     = flag.String("variant", "unsafe", "design variant (Table II): unsafe, stt, stt{ld+fp}, l1, l2, l3, hybrid, perfect")
		model       = flag.String("model", "spectre", "attack model: spectre or futuristic")
		instrs      = flag.Uint64("instrs", 60_000, "committed instructions to measure")
		warmup      = flag.Uint64("warmup", 50_000, "committed instructions of cache warmup")
		wmode       = flag.String("warmup-mode", "detailed", "warmup mode: detailed (on the pipeline) or functional (emulator fast-forward, exact handoff)")
		list        = flag.Bool("list", false, "list workloads and variants, then exit")
		trace       = flag.String("trace", "", "write a cycle-by-cycle event trace to this file ('-' for stderr)")
		traceFormat = flag.String("trace-format", "text",
			"trace sink: text (legacy line format), jsonl (one event per line), chrome (trace-event JSON, loadable in Perfetto / chrome://tracing)")
		traceEvents = flag.String("trace-events", "all",
			"comma-separated event classes to record: "+strings.Join(obs.ClassNames(), ",")+" (or 'all')")
		postmortem = flag.Int("postmortem", 0,
			"keep the last N events in a ring buffer and dump them to stderr if the run fails (works without -trace)")
		interval = flag.Uint64("interval", 0,
			"sample interval statistics every N cycles of the measurement window")
		intervalOut = flag.String("interval-out", "",
			"write the interval time series as JSON to this file ('-' for stdout; default with -interval: stdout)")
		simMode = flag.String("sim-mode", "detailed",
			"simulation mode: detailed (cycle-accurate whole window) or sampled (SimPoint-style: profile, cluster, simulate representatives, reconstruct)")
		sampleInterval = flag.Uint64("sample-interval", 0,
			"sampled mode: interval length in committed instructions (0: per-workload tuned default)")
		sampleMaxK = flag.Int("sample-max-k", 0,
			"sampled mode: maximum number of clusters/representatives (0: per-workload tuned default)")
		sampleSeed = flag.Uint64("sample-seed", simpoint.DefaultSeed,
			"sampled mode: seed for BBV projection and clustering")
	)
	flag.Parse()

	if *list {
		fmt.Println("Workloads:")
		for _, w := range workload.All() {
			fmt.Printf("  %-14s %s\n", w.Name, w.Desc)
		}
		fmt.Println("\nVariants (Table II):")
		harness.WriteTableII(os.Stdout)
		return
	}

	wl, err := workload.ByName(*wlName)
	if err != nil {
		fatal(err)
	}
	v, err := core.ParseVariant(strings.ToLower(*variant))
	if err != nil {
		fatal(err)
	}
	m := pipeline.Spectre
	if strings.EqualFold(*model, "futuristic") {
		m = pipeline.Futuristic
	} else if !strings.EqualFold(*model, "spectre") {
		fatal(fmt.Errorf("unknown attack model %q", *model))
	}

	wm, err := core.ParseWarmupMode(*wmode)
	if err != nil {
		fatal(err)
	}

	mode, err := harness.ParseSimMode(*simMode)
	if err != nil {
		fatal(err)
	}
	if mode == harness.SimSampled {
		if *trace != "" {
			fatal(fmt.Errorf("-trace requires whole-window simulation; drop it or use -sim-mode detailed"))
		}
		runSampled(wl, v, m, *warmup, *instrs, *interval, *intervalOut, simpoint.Config{
			IntervalInstrs: *sampleInterval, MaxK: *sampleMaxK, Seed: *sampleSeed,
		})
		return
	}

	prog, init := wl.Build()
	machine := core.NewMachine(core.Config{
		Variant: v, Model: m, WarmupInstrs: *warmup, WarmupMode: wm, MaxInstrs: *instrs,
		IntervalCycles: *interval,
	}, prog, init)

	mask, err := obs.ParseClasses(*traceEvents)
	if err != nil {
		fatal(err)
	}
	var sinks []obs.Sink
	if *trace != "" {
		var w io.Writer = os.Stderr
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		switch *traceFormat {
		case "text":
			sinks = append(sinks, obs.NewTextSink(w))
		case "jsonl":
			sinks = append(sinks, obs.NewJSONLSink(w))
		case "chrome":
			sinks = append(sinks, obs.NewChromeSink(w))
		default:
			fatal(fmt.Errorf("unknown -trace-format %q (want text, jsonl or chrome)", *traceFormat))
		}
	}
	var ring *obs.RingSink
	if *postmortem > 0 {
		ring = obs.NewRingSink(*postmortem)
		sinks = append(sinks, ring)
	}
	var rec *obs.Recorder
	if len(sinks) > 0 {
		rec = obs.NewRecorder(mask, sinks...)
		machine.SetObserver(rec)
	}

	res, err := machine.Run()
	// Close the recorder before any deferred file close: the Chrome sink
	// writes its JSON trailer here, and buffered sinks flush.
	if cerr := rec.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		if ring != nil {
			if evs := ring.Events(); len(evs) > 0 {
				fmt.Fprintf(os.Stderr, "sdosim: last %d events before failure:\n", len(evs))
				ring.WriteText(os.Stderr)
			}
		}
		fatal(err)
	}

	fmt.Printf("%s on %s (%s model), %d measured instructions\n\n",
		v, wl.Name, m, res.Committed)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	row := func(k string, val any) { fmt.Fprintf(tw, "%s\t%v\t\n", k, val) }
	row("cycles", res.Cycles)
	row("IPC", fmt.Sprintf("%.3f", res.IPC()))
	row("loads", res.Loads)
	row("stores", res.Stores)
	row("branch mispredicts", res.BranchMispredicts)
	row("squashes (total)", res.TotalSquashes())
	for cause, n := range res.SquashesByCause() {
		if n > 0 {
			row("  "+cause, n)
		}
	}
	row("STT delayed loads", res.DelayedLoads)
	row("STT load delay cycles", res.LoadDelayCycles)
	row("STT delayed FP ops", res.DelayedFPs)
	row("delayed branch resolutions", res.DelayedResolutions)
	row("Obl-Ld issued", res.OblIssued)
	row("Obl-Ld success / fail", fmt.Sprintf("%d / %d", res.OblSuccess, res.OblFail))
	row("Obl-Ld predicted-DRAM delays", res.OblPredMem)
	row("validations / exposures", fmt.Sprintf("%d / %d", res.Validations, res.Exposures))
	row("validation commit stalls", res.ValidationStall)
	row("SDO FP issued / failed", fmt.Sprintf("%d / %d", res.FPSDOIssued, res.FPSDOFail))
	row("prediction precise/imprecise/inaccurate",
		fmt.Sprintf("%d / %d / %d", res.PredPrecise, res.PredImprecise, res.PredInaccurate))
	row("L1D hits/misses", fmt.Sprintf("%d / %d", res.L1DHits, res.L1DMisses))
	row("L2 hits/misses", fmt.Sprintf("%d / %d", res.L2Hits, res.L2Misses))
	row("DRAM row hits/misses", fmt.Sprintf("%d / %d", res.DRAMRowHits, res.DRAMRowMisses))
	tw.Flush()

	if *interval > 0 {
		var w io.Writer = os.Stdout
		if *intervalOut != "" && *intervalOut != "-" {
			f, err := os.Create(*intervalOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		} else {
			fmt.Printf("\ninterval series (every %d cycles, %d samples):\n", *interval, len(res.Intervals))
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			IntervalCycles uint64               `json:"interval_cycles"`
			Intervals      []core.IntervalPoint `json:"intervals"`
			ROBOccHist     []uint64             `json:"rob_occ_hist"`
			LQOccHist      []uint64             `json:"lq_occ_hist"`
		}{*interval, res.Intervals, res.ROBOccHist, res.LQOccHist}); err != nil {
			fatal(err)
		}
	}
}

// runSampled executes one cell in SimPoint-sampled mode and prints the
// plan summary plus the reconstructed whole-window statistics. With
// interval > 0 each representative window carries its own time series,
// written with its reconstruction weight (there is no whole-window
// series to fake — the gaps between windows were never simulated).
func runSampled(wl workload.Workload, v core.Variant, m pipeline.AttackModel, warmup, instrs, interval uint64, intervalOut string, cfg simpoint.Config) {
	sp, err := harness.BuildSamplePlan(wl, warmup, instrs, harness.TunedSampleConfig(wl.Name, cfg))
	if err != nil {
		fatal(err)
	}
	res, _, err := harness.RunSampledCell(context.Background(), runtime.GOMAXPROCS(0),
		wl, v, m, core.Ablation{}, sp, harness.RunParams{IntervalCycles: interval},
		harness.RunPolicy{}, nil)
	if err != nil {
		fatal(err)
	}
	p := sp.Plan
	fmt.Printf("%s on %s (%s model), sampled: %d intervals × %d instrs → k=%d representatives\n",
		v, wl.Name, m, p.NumIntervals, p.IntervalInstrs, p.K)
	fmt.Printf("detailed instructions: %d of %d (%.1f%%), profiling cost %d functional instrs, error estimate %.3f\n\n",
		p.SampledInstrs(), p.WindowInstrs,
		100*float64(p.SampledInstrs())/float64(p.WindowInstrs), p.ProfiledInstrs, p.ErrEstimate)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	row := func(k string, val any) { fmt.Fprintf(tw, "%s\t%v\t\n", k, val) }
	row("est. cycles", res.Cycles)
	row("est. IPC", fmt.Sprintf("%.3f", res.IPC()))
	row("est. loads", res.Loads)
	row("est. stores", res.Stores)
	row("est. branch mispredicts", res.BranchMispredicts)
	row("est. squashes (total)", res.TotalSquashes())
	row("est. Obl-Ld issued", res.OblIssued)
	row("est. Obl-Ld success / fail", fmt.Sprintf("%d / %d", res.OblSuccess, res.OblFail))
	row("est. validations / exposures", fmt.Sprintf("%d / %d", res.Validations, res.Exposures))
	row("est. L1D hits/misses", fmt.Sprintf("%d / %d", res.L1DHits, res.L1DMisses))
	tw.Flush()

	if interval > 0 {
		var w io.Writer = os.Stdout
		if intervalOut != "" && intervalOut != "-" {
			f, err := os.Create(intervalOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		} else {
			fmt.Printf("\nsampled interval series (every %d cycles, %d windows):\n",
				interval, len(res.SampledWindows))
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			IntervalCycles uint64               `json:"interval_cycles"`
			SampledWindows []core.SampledWindow `json:"sampled_windows"`
		}{interval, res.SampledWindows}); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sdosim:", err)
	os.Exit(1)
}
