// Command experiments reproduces the paper's evaluation: it sweeps the
// Table II design variants over the workload suite under both attack
// models and regenerates every table and figure of §VIII.
//
// Usage:
//
//	experiments                   # everything (Tables I-III, Figures 6-8, summary)
//	experiments -fig6             # just Figure 6
//	experiments -instrs 100000    # bigger measurement windows
//	experiments -export BENCH_sweep.json   # capture the JSON export (CI trajectories)
//	experiments -workloads mcf_r,gcc_r -serial -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/simpoint"
	"repro/internal/workload"
)

func main() {
	var (
		fig6           = flag.Bool("fig6", false, "Figure 6: normalized execution time")
		fig7           = flag.Bool("fig7", false, "Figure 7: overhead breakdown")
		fig8           = flag.Bool("fig8", false, "Figure 8: squashes vs execution time")
		table1         = flag.Bool("table1", false, "Table I: simulated architecture")
		table2         = flag.Bool("table2", false, "Table II: design variants")
		table3         = flag.Bool("table3", false, "Table III: predictor precision/accuracy")
		summary        = flag.Bool("summary", false, "§VIII-B headline summary")
		ablate         = flag.Bool("ablate", false, "design-space ablations of individual SDO mechanisms")
		asJSON         = flag.Bool("json", false, "emit the sweep as JSON instead of text reports")
		export         = flag.String("export", "", "also write the sweep's JSON export to this file")
		instrs         = flag.Uint64("instrs", 60_000, "measured instructions per run")
		warmup         = flag.Uint64("warmup", 50_000, "warmup instructions per run")
		wmode          = flag.String("warmup-mode", "detailed", "warmup mode: detailed (per-cell pipeline warmup) or functional (emulator warmup with per-workload checkpoints)")
		noReuse        = flag.Bool("no-checkpoint-reuse", false, "with -warmup-mode functional: re-run functional warmup per cell instead of reusing per-workload checkpoints (results are bit-identical; for measurement/CI)")
		simMode        = flag.String("sim-mode", "detailed", "simulation mode: detailed (cycle-accurate whole window) or sampled (SimPoint-style BBV clustering, representative intervals only)")
		sampleInterval = flag.Uint64("sample-interval", 0, "sampled mode: interval length in committed instructions (0: per-workload tuned default)")
		sampleMaxK     = flag.Int("sample-max-k", 0, "sampled mode: maximum clusters/representatives per workload (0: per-workload tuned default)")
		sampleSeed     = flag.Uint64("sample-seed", simpoint.DefaultSeed, "sampled mode: BBV projection / clustering seed")
		ivl            = flag.Uint64("interval", 0, "sample interval statistics every N cycles (included in -export/-json output)")
		wls            = flag.String("workloads", "", "comma-separated subset (default: all)")
		serial         = flag.Bool("serial", false, "disable parallel simulation")
		verbose        = flag.Bool("v", false, "print per-run progress")

		faultSpec   = flag.String("faults", "", "chaos fault-injection spec, e.g. seed=1,panic=0.05,slow=0.1 (also $"+faults.EnvVar+")")
		maxAttempts = flag.Int("max-attempts", 0, "attempts per cell incl. retries of transient failures (0: no retries)")
		tolerate    = flag.Bool("tolerate", false, "survive permanently-failed cells: drop their workloads from the report instead of aborting the sweep")
	)
	flag.Parse()

	all := !*fig6 && !*fig7 && !*fig8 && !*table3 && !*summary && !*ablate
	// Tables I and II need no simulation.
	if *table1 {
		harness.WriteTableI(os.Stdout)
		fmt.Println()
	}
	if *table2 {
		harness.WriteTableII(os.Stdout)
		fmt.Println()
	}
	if !all && !*fig6 && !*fig7 && !*fig8 && !*table3 && !*summary && !*ablate {
		return // only static tables were requested
	}

	opt := harness.DefaultOptions()
	opt.MaxInstrs = *instrs
	opt.WarmupInstrs = *warmup
	opt.IntervalCycles = *ivl
	opt.Parallel = !*serial
	mode, err := core.ParseWarmupMode(*wmode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	opt.WarmupMode = mode
	opt.NoCheckpointReuse = *noReuse
	sm, err := harness.ParseSimMode(*simMode)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	opt.SimMode = sm
	opt.Sample = simpoint.Config{IntervalInstrs: *sampleInterval, MaxK: *sampleMaxK, Seed: *sampleSeed}
	if sm == harness.SimSampled && *ablate {
		fmt.Fprintln(os.Stderr, "experiments: -ablate runs detailed simulation; use -sim-mode detailed")
		os.Exit(1)
	}
	if *wls != "" {
		var list []workload.Workload
		for _, name := range strings.Split(*wls, ",") {
			w, err := workload.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			list = append(list, w)
		}
		opt.Workloads = list
	}
	if *verbose {
		opt.Progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}

	inj, err := faults.Parse(*faultSpec)
	if err == nil && inj == nil {
		inj, err = faults.FromEnv(os.LookupEnv)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if inj.Enabled() {
		fmt.Fprintf(os.Stderr, "experiments: CHAOS fault injection enabled: %+v\n", inj.Config())
	}
	opt.Faults = inj
	opt.Policy.MaxAttempts = *maxAttempts
	opt.TolerateFailures = *tolerate

	if *ablate {
		for _, m := range opt.Models {
			rows, err := harness.RunAblations(opt, m)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			harness.WriteAblations(os.Stdout, m, rows)
			fmt.Println()
		}
		if !all && !*fig6 && !*fig7 && !*fig8 && !*table3 && !*summary {
			return
		}
	}

	res, err := harness.Run(opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if *warmup > 0 {
		// Stderr so the counters never perturb the JSON/report outputs:
		// reuse on/off must export byte-identical documents.
		fmt.Fprintf(os.Stderr, "experiments: warmup-instrs-simulated=%d checkpoints-captured=%d\n",
			res.WarmupInstrsSimulated, res.CheckpointsCaptured)
	}
	if res.SamplePlans != nil {
		// Stderr for the same byte-identical-export reason. The headline:
		// how many detailed instructions sampling actually executed vs. the
		// full-window grid it stands in for.
		full := uint64(len(res.Opt.Cells())) * res.Opt.MaxInstrs
		fmt.Fprintf(os.Stderr, "experiments: sim-mode=sampled detailed-instrs=%d full-grid-instrs=%d (%.1f%%) profiled-instrs=%d\n",
			res.DetailedInstrsSimulated, full,
			100*float64(res.DetailedInstrsSimulated)/float64(full), res.ProfiledInstrs)
		for _, wl := range res.Opt.Workloads {
			if p := res.SamplePlans[wl.Name]; p != nil {
				fmt.Fprintf(os.Stderr, "experiments: plan %-14s k=%d/%d intervals sampled=%d/%d instrs err-est=%.3f\n",
					wl.Name, p.K, p.NumIntervals, p.SampledInstrs(), p.WindowInstrs, p.ErrEstimate)
			}
		}
	}
	if res.Retries > 0 || len(res.Failures) > 0 {
		// Stderr, same reason: chaos-mode exports must stay byte-identical
		// to clean runs. CI greps these counters.
		fmt.Fprintf(os.Stderr, "experiments: cells-retried=%d cells-failed=%d\n",
			res.Retries, len(res.Failures))
		for _, f := range res.Failures {
			fmt.Fprintf(os.Stderr, "experiments: FAILED %s/%v/%v: %s after %d attempt(s): %v\n",
				f.Key.Workload, f.Key.Variant, f.Key.Model, f.Kind, f.Attempts, f.Err)
		}
	}

	if *export != "" {
		f, err := os.Create(*export)
		if err == nil {
			err = res.WriteJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments: export:", err)
			os.Exit(1)
		}
	}

	switch {
	case *asJSON:
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	case all:
		res.WriteAll(os.Stdout)
	default:
		if *fig6 {
			res.WriteFigure6(os.Stdout)
		}
		if *fig7 {
			res.WriteFigure7(os.Stdout)
			fmt.Println()
		}
		if *fig8 {
			res.WriteFigure8(os.Stdout)
			fmt.Println()
		}
		if *table3 {
			res.WriteTableIII(os.Stdout)
			fmt.Println()
		}
		if *summary {
			res.WriteSummary(os.Stdout)
		}
	}
}
