// Command sdoserver runs the simulation service: a long-running HTTP
// server over the experiment harness with a bounded worker pool and a
// persistent content-addressed result cache. Because the simulator is
// fully deterministic, a repeated sweep is answered entirely from cache.
//
// Usage:
//
//	sdoserver                          # listen on :8344, cache in sdo-cache.json
//	sdoserver -addr :9000 -workers 4 -cache /var/lib/sdo/cache.json
//
// API (see README.md "Simulation service"):
//
//	curl -X POST localhost:8344/sweeps -d '{"workloads":["mcf_r"],"max_instrs":60000}'
//	curl localhost:8344/sweeps/sweep-1            # status
//	curl localhost:8344/sweeps/sweep-1/progress   # streamed per-run lines
//	curl localhost:8344/sweeps/sweep-1/export     # harness Export JSON
//	curl localhost:8344/metrics
//
// SIGINT/SIGTERM shut down gracefully: in-flight simulations finish and
// the cache is persisted, so a restarted server answers from cache.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"slices"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/simsvc"
)

func main() {
	var (
		addr          = flag.String("addr", ":8344", "listen address")
		cache         = flag.String("cache", "sdo-cache.json", "result-cache file (empty: in-memory only)")
		cacheMax      = flag.Int("cache-max", 0, "result-cache LRU bound in entries (0: unbounded)")
		cacheMaxBytes = flag.Int64("cache-max-bytes", 0, "result-cache LRU bound in encoded bytes (0: unbounded)")
		workers       = flag.Int("workers", 0, "concurrent simulations (0: all CPUs)")
		drain         = flag.Duration("drain", 2*time.Minute, "shutdown grace period for in-flight runs")
		pprofOn       = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/")

		maxAttempts  = flag.Int("max-attempts", 0, "attempts per cell incl. retries of transient failures (0: default 3)")
		retryBackoff = flag.Duration("retry-backoff", 0, "base retry delay, doubling per attempt with jitter (0: default 200ms)")
		cellTimeout  = flag.Duration("cell-timeout", 0, "wall-clock deadline per cell attempt (0: none)")
		stallTimeout = flag.Duration("stall-timeout", 0, "kill a cell whose committed-instruction count stops advancing this long (0: off)")
		maxPending   = flag.Int("max-pending", 0, "pending-cell queue bound; submissions over it get 429 + Retry-After (0: unbounded)")
		jobTTL       = flag.Duration("job-ttl", 0, "evict finished jobs from the registry after this long (0: no TTL)")
		maxJobs      = flag.Int("max-jobs", 0, "job-registry bound; oldest finished jobs evicted past it (0: default 4096)")
		faultSpec    = flag.String("faults", "", "chaos fault-injection spec, e.g. seed=1,panic=0.05,slow=0.1 (also $"+faults.EnvVar+")")
		autoTimeout  = flag.Bool("auto-timeout", false, "auto-tune the per-cell timeout from the observed run-duration distribution (p99 × 3, clamped; -cell-timeout becomes the upper clamp)")

		speculate   = flag.Bool("speculate", false, "pre-execute predicted follow-up sweeps on idle workers (internal/specexec)")
		specBudget  = flag.Duration("spec-budget", 0, "wasted-CPU budget for speculation; exhausting it stops pre-execution (0: default 5m)")
		specJournal = flag.String("spec-journal", "", "submission-history journal file for the predictor (default: <cache>.history)")

		traceOn   = flag.Bool("trace", false, "record a span tree per sweep cell, served at GET /sweeps/{id}/trace and embedded in exports")
		traceJobs = flag.Int("trace-jobs", 0, "job traces retained (0: default 64)")
		flightN   = flag.Int("flight", 0, "flight-recorder ring size at GET /debug/flight (0: default 256)")

		journal = flag.String("journal", "", "job-journal file for durable resumable sweeps (default: <cache>.jobs when -cache is set; \"off\" disables)")

		peers         = flag.String("peers", "", "comma-separated peer base URLs for cache peering, e.g. http://10.0.0.2:8344,http://10.0.0.3:8344")
		peerTimeout   = flag.Duration("peer-timeout", 0, "per-request peer lookup deadline (0: default 2s)")
		peerHedge     = flag.Duration("peer-hedge", 0, "hedge a peer lookup to the next-ranked peer after this delay (0: default 75ms)")
		peerProbe     = flag.Duration("peer-probe", 0, "peer health-probe period (0: default 5s; negative: off)")
		peerMaxFanout = flag.Int("peer-fanout", 0, "max peers consulted per lookup (0: default 2)")

		clusterPeers  = flag.String("cluster-peers", "", "full cluster membership as comma-separated id=url pairs incl. this node, e.g. a=http://na:8344,b=http://nb:8344 (federates nodes into one logical /sweeps service)")
		nodeID        = flag.String("node-id", "", "this node's member id within -cluster-peers")
		stealInterval = flag.Duration("steal-interval", 0, "work-stealing peer-poll period (0: default 2s; negative: stealing off)")
		stealMax      = flag.Int("steal-max", 0, "max cells claimed per steal poll (0: default 4)")
		stealTTL      = flag.Duration("steal-lease-ttl", 0, "steal-lease duration; an expired lease's cell is reclaimed by its owner (0: default 30s)")
	)
	flag.Parse()

	// Resumable jobs ride alongside the result cache by default: the
	// journal is only useful when the cache that re-derives surviving
	// cells also persists.
	if *journal == "" && *cache != "" {
		*journal = *cache + ".jobs"
	}
	if *journal == "off" {
		*journal = ""
	}
	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}

	// Cluster mode: parse the membership and fold the other members into
	// the cache-peering list, so result lookups, artifact peering, and
	// steal completions all flow over the same fabric.
	var (
		members   []cluster.Member
		memberIDs []string
	)
	if *clusterPeers != "" {
		var err error
		members, err = cluster.ParseMembers(*clusterPeers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdoserver:", err)
			os.Exit(1)
		}
		if *nodeID == "" {
			fmt.Fprintln(os.Stderr, "sdoserver: -cluster-peers requires -node-id")
			os.Exit(1)
		}
		for _, m := range members {
			memberIDs = append(memberIDs, m.ID)
			if m.ID != *nodeID && !slices.Contains(peerList, m.URL) {
				peerList = append(peerList, m.URL)
			}
		}
		if !slices.Contains(memberIDs, *nodeID) {
			fmt.Fprintf(os.Stderr, "sdoserver: -node-id %q not in -cluster-peers\n", *nodeID)
			os.Exit(1)
		}
	} else if *nodeID != "" {
		fmt.Fprintln(os.Stderr, "sdoserver: -node-id requires -cluster-peers")
		os.Exit(1)
	}

	inj, err := faults.Parse(*faultSpec)
	if err == nil && inj == nil {
		inj, err = faults.FromEnv(os.LookupEnv)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdoserver:", err)
		os.Exit(1)
	}
	if inj.Enabled() {
		fmt.Fprintf(os.Stderr, "sdoserver: CHAOS fault injection enabled: %+v\n", inj.Config())
	}

	cfg := simsvc.Config{
		Workers:         *workers,
		CachePath:       *cache,
		CacheMaxEntries: *cacheMax,
		CacheMaxBytes:   *cacheMaxBytes,
		MaxAttempts:     *maxAttempts,
		RetryBackoff:    *retryBackoff,
		CellTimeout:     *cellTimeout,
		StallTimeout:    *stallTimeout,
		MaxPendingCells: *maxPending,
		JobTTL:          *jobTTL,
		MaxJobs:         *maxJobs,
		Faults:          inj,
		AutoTimeout:     *autoTimeout,
		Speculate:       *speculate,
		SpecBudget:      *specBudget,
		SpecJournal:     *specJournal,
		Trace:           *traceOn,
		TraceMaxJobs:    *traceJobs,
		FlightEvents:    *flightN,

		JournalPath: *journal,

		Peers:             peerList,
		PeerTimeout:       *peerTimeout,
		PeerHedgeDelay:    *peerHedge,
		PeerProbeInterval: *peerProbe,
		PeerMaxFanout:     *peerMaxFanout,
	}
	if members != nil {
		cfg.OwnsID = cluster.Owns(*nodeID, memberIDs)
		cfg.PeerArtifacts = true
		cfg.WorkStealing = true
		cfg.StealLeaseTTL = *stealTTL
	}
	svc, err := simsvc.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sdoserver:", err)
		os.Exit(1)
	}
	if n := svc.Cache().Len(); n > 0 {
		fmt.Fprintf(os.Stderr, "sdoserver: loaded %d cached results from %s\n", n, *cache)
	}
	if *journal != "" {
		h := svc.Health()
		if h.ResumingJobs > 0 {
			fmt.Fprintf(os.Stderr, "sdoserver: resuming %d interrupted sweep(s) from %s (healthz: degraded until replay completes)\n",
				h.ResumingJobs, *journal)
		} else {
			fmt.Fprintf(os.Stderr, "sdoserver: job journal at %s (sweeps survive restarts)\n", *journal)
		}
	}
	if len(peerList) > 0 {
		fmt.Fprintf(os.Stderr, "sdoserver: cache peering with %d peer(s): %s\n", len(peerList), strings.Join(peerList, ", "))
	}
	if *speculate {
		fmt.Fprintln(os.Stderr, "sdoserver: speculative pre-execution enabled (status at GET /spec)")
	}
	if *traceOn {
		fmt.Fprintln(os.Stderr, "sdoserver: sweep tracing enabled (traces at GET /sweeps/{id}/trace)")
	}

	handler := svc.Handler()
	var node *cluster.Node
	if members != nil {
		node, err = cluster.New(cluster.Config{
			Self:          *nodeID,
			Members:       members,
			Service:       svc,
			Trace:         *traceOn,
			StealInterval: *stealInterval,
			StealMax:      *stealMax,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "sdoserver:", err)
			os.Exit(1)
		}
		handler = node.Handler()
		fmt.Fprintf(os.Stderr, "sdoserver: cluster node %q in %d-member cluster (one logical /sweeps; work stealing %v)\n",
			*nodeID, len(members), *stealInterval >= 0)
	}
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Fprintln(os.Stderr, "sdoserver: pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "sdoserver: listening on %s\n", *addr)

	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "sdoserver:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Fprintln(os.Stderr, "sdoserver: shutting down (finishing in-flight runs)")
	if node != nil {
		node.Close() // stop stealing before draining the local pool
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "sdoserver: http shutdown:", err)
	}
	if err := svc.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "sdoserver: service shutdown:", err)
		os.Exit(1)
	}
	if *cache != "" {
		fmt.Fprintf(os.Stderr, "sdoserver: cache persisted to %s (%d results)\n", *cache, svc.Cache().Len())
	}
}
