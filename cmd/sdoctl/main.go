// Command sdoctl is the simulation service's command-line client: it
// submits sweep jobs to a running sdoserver, follows their progress, and
// fetches results — the curl incantations from the README as one tool.
//
// Usage:
//
//	sdoctl [-server URL] <command> [args]
//
//	sdoctl submit -workloads mcf_r,gcc_r -instrs 60000 -wait
//	sdoctl submit -sim-mode sampled -sample-interval 5000 -wait
//	sdoctl submit -ablations -wait
//	sdoctl list
//	sdoctl status sweep-1
//	sdoctl progress sweep-1          # stream per-run lines until done
//	sdoctl export sweep-1 -o out.json
//	sdoctl cancel sweep-1
//	sdoctl variants                  # list the registered protection schemes
//	sdoctl health
//	sdoctl metrics
//	sdoctl spec                      # speculation status (server: -speculate)
//	sdoctl trace sweep-1             # span-tree trace (server: -trace)
//	sdoctl flight                    # flight recorder: last N events + build info
//
// The server defaults to $SDOCTL_SERVER, then http://localhost:8344.
// -server accepts a comma-separated node list (any member of a sdoserver
// cluster): idempotent GETs fail over to the next node on connection
// errors; submits and cancels never do.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/obs/trace"
	"repro/internal/simsvc"
)

const envServer = "SDOCTL_SERVER"

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func defaultServer() string {
	if s := os.Getenv(envServer); s != "" {
		return s
	}
	return "http://localhost:8344"
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage: sdoctl [-server URL] <command> [args]

commands:
  submit    submit a sweep (see sdoctl submit -h)
  list      list all jobs
  status    show one job's status:        sdoctl status <id>
  progress  stream per-run progress:      sdoctl progress <id>
  export    fetch the result export JSON: sdoctl export <id> [-o file]
  cancel    cancel a running job:         sdoctl cancel <id>
  variants  list the registered protection schemes (/variants)
  health    show the server's /healthz document
  metrics   dump the server's /metrics document
  spec      show speculation status (/spec; server must run -speculate)
  trace     show a sweep's span-tree trace:  sdoctl trace <id> [-format text|json|chrome] [-o file]
            (server must run -trace)
  flight    dump the flight recorder (/debug/flight: last events + build info)
`)
}

// run is the CLI body, factored out of main so tests can drive it against
// an httptest server and capture its output.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdoctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	server := fs.String("server", defaultServer(), "service base URL, or a comma-separated cluster node list with GET failover (also $"+envServer+")")
	fs.Usage = func() { usage(stderr); fmt.Fprintln(stderr, "\nglobal flags:"); fs.PrintDefaults() }
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) == 0 {
		fs.Usage()
		return 2
	}
	var bases []string
	for _, s := range strings.Split(*server, ",") {
		if s = strings.TrimRight(strings.TrimSpace(s), "/"); s != "" {
			bases = append(bases, s)
		}
	}
	if len(bases) == 0 {
		fmt.Fprintln(stderr, "sdoctl: empty -server list")
		return 2
	}
	c := &client{bases: bases, out: stdout, errw: stderr}
	cmd, rest := rest[0], rest[1:]
	needID := func() (string, bool) {
		if len(rest) < 1 || strings.HasPrefix(rest[0], "-") {
			fmt.Fprintf(stderr, "sdoctl %s: missing sweep id\n", cmd)
			return "", false
		}
		return rest[0], true
	}
	switch cmd {
	case "submit":
		return c.submit(rest)
	case "list":
		return c.list()
	case "status":
		id, ok := needID()
		if !ok {
			return 2
		}
		return c.showJSON("/sweeps/" + id)
	case "progress":
		id, ok := needID()
		if !ok {
			return 2
		}
		return c.progress(id)
	case "export":
		id, ok := needID()
		if !ok {
			return 2
		}
		return c.export(id, rest[1:])
	case "cancel":
		id, ok := needID()
		if !ok {
			return 2
		}
		return c.cancel(id)
	case "variants":
		return c.variants()
	case "health":
		return c.showJSON("/healthz")
	case "metrics":
		return c.stream("/metrics")
	case "spec":
		return c.showJSON("/spec")
	case "trace":
		id, ok := needID()
		if !ok {
			return 2
		}
		return c.trace(id, rest[1:])
	case "flight":
		return c.showJSON("/debug/flight")
	default:
		fmt.Fprintf(stderr, "sdoctl: unknown command %q\n\n", cmd)
		usage(stderr)
		return 2
	}
}

type client struct {
	// bases is the server list; cur indexes the node currently in use and
	// is sticky across requests, so after a failover the rest of the
	// invocation (e.g. submit -wait's progress stream) talks to the node
	// that answered. With a cluster behind it any node can serve any job.
	bases []string
	cur   int
	out   io.Writer
	errw  io.Writer
	hc    http.Client
}

func (c *client) base() string { return c.bases[c.cur] }

func (c *client) fail(err error) int {
	fmt.Fprintln(c.errw, "sdoctl:", err)
	return 1
}

// Transient-connection retry policy for idempotent GETs: a server that
// is restarting (resuming its journal) or briefly unreachable answers
// with connection refused/reset, and retrying is strictly better than
// failing the invocation. POST/DELETE are never retried — a submit that
// half-landed must not be replayed.
var (
	retryAttempts  = 4
	retryBaseDelay = 250 * time.Millisecond
	retryMaxDelay  = 2 * time.Second
)

// transientConnErr reports whether err looks like a connection-level
// failure worth retrying (refused, reset, or the connection dying before
// a response) rather than a definitive answer from the server.
func transientConnErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true
	}
	msg := err.Error()
	return strings.Contains(msg, "connection refused") || strings.Contains(msg, "connection reset")
}

// do performs one request; any non-2xx response becomes an error carrying
// the server's message (and Retry-After hint on 429). Idempotent GETs are
// retried on transient connection errors with capped exponential backoff;
// with a multi-node -server list each retry round first fails over through
// the remaining nodes before sleeping. POST/DELETE never retry or fail
// over — a submit that half-landed must not be replayed.
func (c *client) do(method, path string, body io.Reader) (*http.Response, error) {
	var resp *http.Response
	var err error
	delay := retryBaseDelay
	for round := 1; ; round++ {
		for i := 0; i < len(c.bases); i++ {
			var req *http.Request
			req, err = http.NewRequest(method, c.base()+path, body)
			if err != nil {
				return nil, err
			}
			if body != nil {
				req.Header.Set("Content-Type", "application/json")
			}
			resp, err = c.hc.Do(req)
			if err == nil || method != http.MethodGet || !transientConnErr(err) {
				break
			}
			if len(c.bases) > 1 && i < len(c.bases)-1 {
				next := (c.cur + 1) % len(c.bases)
				fmt.Fprintf(c.errw, "sdoctl: %s %s: %v (failing over to %s)\n",
					method, path, err, c.bases[next])
				c.cur = next
			}
		}
		if err == nil {
			break
		}
		if method != http.MethodGet || round >= retryAttempts || !transientConnErr(err) {
			return nil, err
		}
		fmt.Fprintf(c.errw, "sdoctl: %s %s: %v (retrying in %s, attempt %d/%d)\n",
			method, path, err, delay, round, retryAttempts)
		time.Sleep(delay)
		if delay *= 2; delay > retryMaxDelay {
			delay = retryMaxDelay
		}
	}
	if resp.StatusCode >= 300 {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		msg := strings.TrimSpace(string(b))
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			msg += " (retry after " + ra + "s)"
		}
		return nil, fmt.Errorf("%s %s: %s: %s", method, path, resp.Status, msg)
	}
	return resp, nil
}

// showJSON fetches path and pretty-prints the JSON document.
func (c *client) showJSON(path string) int {
	resp, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	_, err = io.Copy(c.out, resp.Body)
	if err != nil {
		return c.fail(err)
	}
	return 0
}

// stream copies a text endpoint (progress lines, metrics) to stdout as it
// arrives.
func (c *client) stream(path string) int {
	resp, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	if _, err := io.Copy(c.out, resp.Body); err != nil {
		return c.fail(err)
	}
	return 0
}

func (c *client) submit(args []string) int {
	fs := flag.NewFlagSet("sdoctl submit", flag.ContinueOnError)
	fs.SetOutput(c.errw)
	var (
		wls    = fs.String("workloads", "", "comma-separated workload subset (default: all)")
		vars   = fs.String("variants", "", "comma-separated Table II variants (default: all)")
		models = fs.String("models", "", "comma-separated attack models (default: both)")
		instrs = fs.Uint64("instrs", 0, "measured instructions per run (0: server default)")
		warmup = fs.Int64("warmup", -1, "warmup instructions per run (-1: server default; 0 is an explicit no-warmup)")
		ivl    = fs.Uint64("interval", 0, "interval statistics every N cycles (0: off)")
		wmode  = fs.String("warmup-mode", "", "warmup mode: detailed or functional (default: detailed)")
		smode  = fs.String("sim-mode", "", "simulation mode: detailed or sampled (default: detailed)")
		sivl   = fs.Uint64("sample-interval", 0, "sampled mode: interval length in instructions (0: default)")
		smaxk  = fs.Int("sample-max-k", 0, "sampled mode: maximum representatives per workload (0: default)")
		sseed  = fs.Uint64("sample-seed", 0, "sampled mode: clustering seed (0: default)")
		ablate = fs.Bool("ablations", false, "run the design-space ablation study instead of a variant sweep")
		wait   = fs.Bool("wait", false, "stream progress until the job finishes; exit non-zero unless it completes")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	split := func(s string) []string {
		if s == "" {
			return nil
		}
		parts := strings.Split(s, ",")
		for i := range parts {
			parts[i] = strings.TrimSpace(parts[i])
		}
		return parts
	}
	req := simsvc.SweepRequest{
		Workloads:            split(*wls),
		Variants:             split(*vars),
		Models:               split(*models),
		MaxInstrs:            *instrs,
		IntervalCycles:       *ivl,
		WarmupMode:           *wmode,
		SimMode:              *smode,
		SampleIntervalInstrs: *sivl,
		SampleMaxK:           *smaxk,
		SampleSeed:           *sseed,
		Ablations:            *ablate,
	}
	if *warmup >= 0 {
		w := uint64(*warmup)
		req.WarmupInstrs = &w
	}
	body, err := json.Marshal(req)
	if err != nil {
		return c.fail(err)
	}
	resp, err := c.do(http.MethodPost, "/sweeps", bytes.NewReader(body))
	if err != nil {
		return c.fail(err)
	}
	var st simsvc.Status
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return c.fail(err)
	}
	fmt.Fprintf(c.out, "submitted %s (%d runs)\n", st.ID, st.Total)
	if !*wait {
		return 0
	}
	return c.progress(st.ID)
}

// progress streams a job's per-run lines until it reaches a terminal
// state, then reports that state in the exit code: 0 for done, 1 for
// failed/cancelled/degraded.
func (c *client) progress(id string) int {
	if code := c.stream("/sweeps/" + id + "/progress"); code != 0 {
		return code
	}
	st, err := c.status(id)
	if err != nil {
		return c.fail(err)
	}
	if st.State != simsvc.JobDone {
		return 1
	}
	return 0
}

func (c *client) status(id string) (simsvc.Status, error) {
	var st simsvc.Status
	resp, err := c.do(http.MethodGet, "/sweeps/"+id, nil)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	return st, json.NewDecoder(resp.Body).Decode(&st)
}

func (c *client) list() int {
	resp, err := c.do(http.MethodGet, "/sweeps", nil)
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	var jobs []simsvc.Status
	if err := json.NewDecoder(resp.Body).Decode(&jobs); err != nil {
		return c.fail(err)
	}
	if len(jobs) == 0 {
		fmt.Fprintln(c.out, "no sweeps")
		return 0
	}
	fmt.Fprintf(c.out, "%-10s %-10s %9s %8s %7s %8s\n", "ID", "STATE", "RUNS", "CACHED", "FAILED", "RETRIES")
	for _, j := range jobs {
		fmt.Fprintf(c.out, "%-10s %-10s %4d/%-4d %8d %7d %8d\n",
			j.ID, j.State, j.Completed, j.Total, j.Cached, j.Failed, j.Retries)
	}
	return 0
}

// variants lists the registered protection schemes as a table: the exact
// names (and aliases) `sdoctl submit -variants` accepts.
func (c *client) variants() int {
	resp, err := c.do(http.MethodGet, "/variants", nil)
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	var schemes []simsvc.VariantInfo
	if err := json.NewDecoder(resp.Body).Decode(&schemes); err != nil {
		return c.fail(err)
	}
	fmt.Fprintf(c.out, "%-12s %-28s %s\n", "NAME", "ALIASES", "DESCRIPTION")
	for _, s := range schemes {
		fmt.Fprintf(c.out, "%-12s %-28s %s\n", s.Name, strings.Join(s.Aliases, ","), s.Description)
	}
	return 0
}

func (c *client) export(id string, args []string) int {
	fs := flag.NewFlagSet("sdoctl export", flag.ContinueOnError)
	fs.SetOutput(c.errw)
	out := fs.String("o", "", "write the export to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	resp, err := c.do(http.MethodGet, "/sweeps/"+id+"/export", nil)
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	w := c.out
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return c.fail(err)
		}
		defer f.Close()
		w = f
	}
	if _, err := io.Copy(w, resp.Body); err != nil {
		return c.fail(err)
	}
	if *out != "" {
		fmt.Fprintf(c.errw, "sdoctl: export written to %s\n", *out)
	}
	return 0
}

// trace fetches a sweep's span-tree trace. The default text rendering is
// an indented tree with a per-cell attribution summary; -format json and
// -format chrome pass the server documents through (chrome is loadable
// in chrome://tracing or Perfetto).
func (c *client) trace(id string, args []string) int {
	fs := flag.NewFlagSet("sdoctl trace", flag.ContinueOnError)
	fs.SetOutput(c.errw)
	format := fs.String("format", "text", "output format: text, json, or chrome")
	out := fs.String("o", "", "write the trace to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	path := "/sweeps/" + id + "/trace"
	switch *format {
	case "text", "json":
	case "chrome":
		path += "?format=chrome"
	default:
		fmt.Fprintf(c.errw, "sdoctl trace: unknown format %q (want text, json or chrome)\n", *format)
		return 2
	}
	resp, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	w := c.out
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return c.fail(err)
		}
		defer f.Close()
		w = f
	}
	if *format != "text" {
		if _, err := io.Copy(w, resp.Body); err != nil {
			return c.fail(err)
		}
		return 0
	}
	var doc trace.Doc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return c.fail(err)
	}
	fmt.Fprintf(w, "%s  (epoch %s, %d cells)\n", doc.ID, doc.Epoch.Format(time.RFC3339), len(doc.Cells))
	for _, cell := range doc.Cells {
		fmt.Fprintf(w, "\n%s\n", cell.Cell)
		printNode(w, cell.Spans, 1)
		if cell.Attribution != nil {
			fmt.Fprintf(w, "  = %s\n", cell.Attribution.Summary())
		}
	}
	return 0
}

// printNode renders one span subtree as an indented duration tree.
func printNode(w io.Writer, n *trace.Node, depth int) {
	if n == nil {
		return
	}
	indent := strings.Repeat("  ", depth)
	label := n.Name
	if len(n.Attrs) > 0 {
		keys := make([]string, 0, len(n.Attrs))
		for k := range n.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var parts []string
		for _, k := range keys {
			parts = append(parts, k+"="+n.Attrs[k])
		}
		label += " [" + strings.Join(parts, " ") + "]"
	}
	fmt.Fprintf(w, "%s%-40s %10.1fms  @%+.1fms\n", indent, label,
		float64(n.DurUS)/1e3, float64(n.StartUS)/1e3)
	for _, c := range n.Children {
		printNode(w, c, depth+1)
	}
}

func (c *client) cancel(id string) int {
	resp, err := c.do(http.MethodDelete, "/sweeps/"+id, nil)
	if err != nil {
		return c.fail(err)
	}
	defer resp.Body.Close()
	var st simsvc.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return c.fail(err)
	}
	fmt.Fprintf(c.out, "%s: %s\n", st.ID, st.State)
	return 0
}
