package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/simsvc"
)

// newServer starts a real service behind httptest, the exact stack
// sdoserver runs.
func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := simsvc.New(simsvc.Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Shutdown(context.Background())
	})
	return srv
}

// ctl runs one sdoctl invocation against srv, returning exit code and
// captured stdout/stderr.
func ctl(t *testing.T, srv *httptest.Server, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(append([]string{"-server", srv.URL}, args...), &out, &errw)
	return code, out.String(), errw.String()
}

func TestSubmitWaitExport(t *testing.T) {
	srv := newServer(t)

	code, out, errw := ctl(t, srv, "submit",
		"-workloads", "exchange2_r", "-variants", "unsafe,hybrid", "-models", "spectre",
		"-instrs", "2000", "-warmup", "1000", "-wait")
	if code != 0 {
		t.Fatalf("submit -wait: exit %d, stderr %q", code, errw)
	}
	if !strings.Contains(out, "submitted sweep-1 (2 runs)") {
		t.Errorf("submit output missing header: %q", out)
	}
	if !strings.Contains(out, "# sweep sweep-1: done (2/2 runs") {
		t.Errorf("progress trailer missing: %q", out)
	}

	code, out, errw = ctl(t, srv, "export", "sweep-1")
	if code != 0 {
		t.Fatalf("export: exit %d, stderr %q", code, errw)
	}
	var doc struct {
		Runs []json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("export is not JSON: %v\n%s", err, out)
	}
	if len(doc.Runs) != 2 {
		t.Errorf("export has %d runs, want 2", len(doc.Runs))
	}
}

func TestSubmitSampled(t *testing.T) {
	srv := newServer(t)
	code, out, errw := ctl(t, srv, "submit",
		"-workloads", "exchange2_r", "-variants", "unsafe", "-models", "spectre",
		"-instrs", "6000", "-warmup", "1000",
		"-sim-mode", "sampled", "-sample-interval", "2000", "-wait")
	if code != 0 {
		t.Fatalf("sampled submit: exit %d, stderr %q stdout %q", code, errw, out)
	}
	if !strings.Contains(out, "done (1/1 runs") {
		t.Errorf("sampled job did not finish: %q", out)
	}
}

func TestListStatusCancelHealthMetrics(t *testing.T) {
	srv := newServer(t)

	if code, out, _ := ctl(t, srv, "list"); code != 0 || !strings.Contains(out, "no sweeps") {
		t.Errorf("empty list: exit %d, out %q", code, out)
	}

	code, _, errw := ctl(t, srv, "submit", "-workloads", "exchange2_r",
		"-variants", "unsafe", "-models", "spectre", "-instrs", "2000", "-wait")
	if code != 0 {
		t.Fatalf("submit: %q", errw)
	}

	if code, out, _ := ctl(t, srv, "list"); code != 0 || !strings.Contains(out, "sweep-1") || !strings.Contains(out, "done") {
		t.Errorf("list: exit %d, out %q", code, out)
	}
	if code, out, _ := ctl(t, srv, "status", "sweep-1"); code != 0 || !strings.Contains(out, `"state": "done"`) {
		t.Errorf("status: exit %d, out %q", code, out)
	}
	// Cancelling a finished job is a 409 — surfaced as a failure.
	if code, _, errw := ctl(t, srv, "cancel", "sweep-1"); code != 1 || !strings.Contains(errw, "already finished") {
		t.Errorf("cancel finished job: exit %d, stderr %q", code, errw)
	}
	if code, out, _ := ctl(t, srv, "health"); code != 0 || !strings.Contains(out, `"status": "ok"`) {
		t.Errorf("health: exit %d, out %q", code, out)
	}
	if code, out, _ := ctl(t, srv, "metrics"); code != 0 || !strings.Contains(out, "sdo_runs_executed_total") {
		t.Errorf("metrics: exit %d, out %q", code, out)
	}
}

func TestVariants(t *testing.T) {
	srv := newServer(t)
	code, out, errw := ctl(t, srv, "variants")
	if code != 0 {
		t.Fatalf("variants: exit %d, stderr %q", code, errw)
	}
	for _, want := range []string{
		"NAME", "DESCRIPTION",
		"Unsafe", "STT{ld}", "Hybrid", "Perfect",
		"SafeSpec", "safespec,safe-spec", "Shadow speculative cache",
		"SpecBox", "invisible to probes until commit",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("variants output missing %q:\n%s", want, out)
		}
	}

	// Submitting one of the listed additions by alias works end to end.
	code, out, errw = ctl(t, srv, "submit", "-workloads", "exchange2_r",
		"-variants", "safespec", "-models", "spectre", "-instrs", "2000", "-warmup", "1000", "-wait")
	if code != 0 {
		t.Fatalf("submit safespec: exit %d, stderr %q stdout %q", code, errw, out)
	}
	if !strings.Contains(out, "done (1/1 runs") {
		t.Errorf("safespec sweep did not finish: %q", out)
	}

	// An unknown name is rejected with the valid-scheme list.
	code, _, errw = ctl(t, srv, "submit", "-workloads", "exchange2_r",
		"-variants", "nope", "-instrs", "2000")
	if code != 1 || !strings.Contains(errw, "valid schemes") || !strings.Contains(errw, "SafeSpec") {
		t.Errorf("unknown variant: exit %d, stderr %q", code, errw)
	}
}

// newTracedServer is newServer with sweep tracing on.
func newTracedServer(t *testing.T) *httptest.Server {
	t.Helper()
	svc, err := simsvc.New(simsvc.Config{Workers: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		srv.Close()
		svc.Shutdown(context.Background())
	})
	return srv
}

func TestTraceAndFlight(t *testing.T) {
	srv := newTracedServer(t)

	code, _, errw := ctl(t, srv, "submit", "-workloads", "exchange2_r",
		"-variants", "unsafe,hybrid", "-models", "spectre",
		"-instrs", "2000", "-warmup", "1000", "-wait")
	if code != 0 {
		t.Fatalf("submit: %q", errw)
	}

	// Default text rendering: a span tree per cell plus an attribution
	// summary line.
	code, out, errw := ctl(t, srv, "trace", "sweep-1")
	if code != 0 {
		t.Fatalf("trace: exit %d, stderr %q", code, errw)
	}
	for _, want := range []string{"sweep-1", "cell", "queue-wait", "cache-lookup", "simulate", "= wall"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace text missing %q:\n%s", want, out)
		}
	}

	code, out, _ = ctl(t, srv, "trace", "sweep-1", "-format", "json")
	if code != 0 {
		t.Fatalf("trace -format json: exit %d", code)
	}
	var doc struct {
		Cells []json.RawMessage `json:"cells"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil || len(doc.Cells) != 2 {
		t.Errorf("trace json: err %v, %d cells, out %q", err, len(doc.Cells), out)
	}

	code, out, _ = ctl(t, srv, "trace", "sweep-1", "-format", "chrome")
	if code != 0 || !strings.Contains(out, "traceEvents") {
		t.Errorf("trace -format chrome: exit %d, out %q", code, out)
	}

	code, out, _ = ctl(t, srv, "flight")
	if code != 0 || !strings.Contains(out, `"build"`) || !strings.Contains(out, "sweep-finished") {
		t.Errorf("flight: exit %d, out %q", code, out)
	}

	if code, _, errw := ctl(t, srv, "trace", "sweep-9"); code != 1 || !strings.Contains(errw, "unknown sweep") {
		t.Errorf("trace of unknown sweep: exit %d, stderr %q", code, errw)
	}
}

func TestBadInvocations(t *testing.T) {
	srv := newServer(t)
	if code, _, _ := ctl(t, srv); code != 2 {
		t.Error("no command should exit 2")
	}
	if code, _, errw := ctl(t, srv, "bogus"); code != 2 || !strings.Contains(errw, "unknown command") {
		t.Errorf("unknown command: exit %d, stderr %q", code, errw)
	}
	if code, _, errw := ctl(t, srv, "status"); code != 2 || !strings.Contains(errw, "missing sweep id") {
		t.Errorf("missing id: exit %d, stderr %q", code, errw)
	}
	if code, _, errw := ctl(t, srv, "status", "sweep-99"); code != 1 || !strings.Contains(errw, "unknown sweep") {
		t.Errorf("unknown sweep: exit %d, stderr %q", code, errw)
	}
	// Server-side validation surfaces as a 400 with the service's message.
	if code, _, errw := ctl(t, srv, "submit", "-workloads", "nope"); code != 1 || !strings.Contains(errw, "unknown workload") {
		t.Errorf("bad workload: exit %d, stderr %q", code, errw)
	}
}
