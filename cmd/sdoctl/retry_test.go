package main

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// flakyTransport refuses the first n connections, then hands off to the
// real transport — the shape of a server that is restarting.
type flakyTransport struct {
	refusals atomic.Int32
	limit    int32
	next     http.RoundTripper
}

func (f *flakyTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if f.refusals.Add(1) <= f.limit {
		return nil, syscall.ECONNREFUSED
	}
	return f.next.RoundTrip(req)
}

func fastRetries(t *testing.T) {
	t.Helper()
	base, max := retryBaseDelay, retryMaxDelay
	retryBaseDelay, retryMaxDelay = time.Millisecond, 4*time.Millisecond
	t.Cleanup(func() { retryBaseDelay, retryMaxDelay = base, max })
}

func TestGetRetriesTransientConnectionErrors(t *testing.T) {
	fastRetries(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	ft := &flakyTransport{limit: 2, next: http.DefaultTransport}
	var out, errw bytes.Buffer
	c := &client{bases: []string{srv.URL}, out: &out, errw: &errw, hc: http.Client{Transport: ft}}
	if code := c.showJSON("/healthz"); code != 0 {
		t.Fatalf("GET through a flaky connection: exit %d, stderr %q", code, errw.String())
	}
	if !strings.Contains(out.String(), `"ok"`) {
		t.Fatalf("missing response body: %q", out.String())
	}
	if got := strings.Count(errw.String(), "retrying"); got != 2 {
		t.Fatalf("stderr shows %d retries, want 2:\n%s", got, errw.String())
	}
}

func TestGetGivesUpAfterRetryBudget(t *testing.T) {
	fastRetries(t)
	ft := &flakyTransport{limit: 1 << 30, next: http.DefaultTransport}
	var out, errw bytes.Buffer
	c := &client{bases: []string{"http://127.0.0.1:1"}, out: &out, errw: &errw, hc: http.Client{Transport: ft}}
	if code := c.showJSON("/healthz"); code != 1 {
		t.Fatalf("permanently refused GET: exit %d, want 1", code)
	}
	if n := ft.refusals.Load(); n != int32(retryAttempts) {
		t.Fatalf("dialed %d times, want exactly the retry budget %d", n, retryAttempts)
	}
}

func TestGetFailsOverToNextServer(t *testing.T) {
	fastRetries(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	}))
	defer srv.Close()

	var out, errw bytes.Buffer
	c := &client{bases: []string{"http://127.0.0.1:1", srv.URL}, out: &out, errw: &errw}
	if code := c.showJSON("/healthz"); code != 0 {
		t.Fatalf("GET with one dead node: exit %d, stderr %q", code, errw.String())
	}
	if !strings.Contains(errw.String(), "failing over") {
		t.Fatalf("stderr missing failover notice:\n%s", errw.String())
	}
	if strings.Contains(errw.String(), "retrying") {
		t.Fatalf("failover slept through a backoff round:\n%s", errw.String())
	}
	if c.base() != srv.URL {
		t.Fatalf("client not sticky on the live node: %s", c.base())
	}

	// Subsequent requests go straight to the surviving node.
	errw.Reset()
	if code := c.showJSON("/healthz"); code != 0 || errw.Len() != 0 {
		t.Fatalf("follow-up GET: exit %d, stderr %q", code, errw.String())
	}
}

func TestPostDoesNotFailOver(t *testing.T) {
	fastRetries(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("POST reached the fallback node")
	}))
	defer srv.Close()
	var out, errw bytes.Buffer
	c := &client{bases: []string{"http://127.0.0.1:1", srv.URL}, out: &out, errw: &errw}
	if _, err := c.do(http.MethodPost, "/sweeps", strings.NewReader("{}")); err == nil {
		t.Fatal("refused POST did not error")
	}
	if c.cur != 0 {
		t.Fatal("POST rotated the server list (submissions must not replay)")
	}
}

func TestPostIsNeverRetried(t *testing.T) {
	fastRetries(t)
	ft := &flakyTransport{limit: 1 << 30, next: http.DefaultTransport}
	var out, errw bytes.Buffer
	c := &client{bases: []string{"http://127.0.0.1:1"}, out: &out, errw: &errw, hc: http.Client{Transport: ft}}
	if _, err := c.do(http.MethodPost, "/sweeps", strings.NewReader("{}")); err == nil {
		t.Fatal("refused POST did not error")
	}
	if n := ft.refusals.Load(); n != 1 {
		t.Fatalf("POST dialed %d times, want 1 (submissions must not replay)", n)
	}
}

func TestNonTransientErrorIsNotRetried(t *testing.T) {
	fastRetries(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "unknown sweep", http.StatusNotFound)
	}))
	defer srv.Close()
	var hits atomic.Int32
	counting := roundTripFunc(func(req *http.Request) (*http.Response, error) {
		hits.Add(1)
		return http.DefaultTransport.RoundTrip(req)
	})
	var out, errw bytes.Buffer
	c := &client{bases: []string{srv.URL}, out: &out, errw: &errw, hc: http.Client{Transport: counting}}
	if code := c.showJSON("/sweeps/sweep-9"); code != 1 {
		t.Fatalf("404 GET: exit %d, want 1", code)
	}
	if hits.Load() != 1 {
		t.Fatalf("404 dialed %d times, want 1 (an HTTP answer is definitive)", hits.Load())
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }
